"""Direct tests of the paper's formal claims (Section 3).

Each test class maps to one definition or lemma of the Reunion execution
model, exercised mechanically on small systems.
"""

from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.config import Mode, PhantomStrength
from tests.core.helpers import SHARED_SMALL, build


class TestDefinition2VocalMute:
    """Vocal exposes updates; the mute never does."""

    PROGRAM = """
        movi r1, 0x500
        movi r2, 42
        store r2, [r1]
        membar
        halt
    """

    def test_only_vocal_updates_reach_the_system(self):
        # Pinned to the shared backend: this asserts against its
        # directory bookkeeping.  The directory backend's version is
        # test_directory_backend.py::test_mute_fills_never_reach_the_directory.
        system = build([self.PROGRAM], mode=Mode.REUNION, config=SHARED_SMALL)
        system.run_until_idle()
        line_addr = 0x500 >> 6
        # Vocal owns the line per the directory.
        entry = system.controller.directory.peek(line_addr)
        assert entry is not None
        assert entry.owner == system.vocal_cores[0].core_id
        # The mute's copy exists in its private hierarchy only.
        mute = system.cores[1]
        assert mute.core_id not in entry.sharers


class TestLemma1IncoherenceAloneIsSafe:
    """Input incoherence without soft errors cannot corrupt vocal state.

    We force incoherence on every cold load (null phantom) and check the
    vocal's architectural results are exactly the golden model's.
    """

    PROGRAM = """
        .word 0x800 3
        .word 0x840 5
        movi r1, 0x800
        load r2, [r1]
        load r3, [r1+64]
        mul r4, r2, r3
        beq r4, r0, dead
        addi r5, r4, 1
    dead:
        halt
    """

    def test_vocal_state_safe_under_constant_incoherence(self):
        system = build([self.PROGRAM], mode=Mode.REUNION, phantom=PhantomStrength.NULL)
        system.run_until_idle(max_cycles=200_000)
        assert not system.failed
        golden = golden_run(assemble(self.PROGRAM)).registers
        vocal = system.vocal_cores[0]
        for reg in range(6):
            assert vocal.arf.read(reg) == golden.read(reg)
        assert system.recoveries() > 0  # incoherence did occur


class TestLemma2ForwardProgress:
    """The re-execution protocol always makes forward progress.

    Null phantom requests re-poison the mute's cache after every
    recovery; the synchronizing request must still push the pair through
    at least the faulting load each time.
    """

    def test_progress_through_a_long_cold_scan(self):
        lines = "\n".join(
            f".word {0x800 + 64 * i:#x} {i + 1}" for i in range(12)
        )
        program = f"""
            {lines}
            movi r1, 0x800
            movi r2, 0
            movi r3, 12
        loop:
            load r4, [r1]
            add r2, r2, r4
            addi r1, r1, 64
            addi r3, r3, -1
            bne r3, r0, loop
            halt
        """
        system = build([program], mode=Mode.REUNION, phantom=PhantomStrength.NULL)
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert system.vocal_cores[0].arf.read(2) == sum(range(1, 13))
        # One recovery (at least) per cold line, and we still finished.
        assert system.recoveries() >= 12


class TestDefinition7OutputComparison:
    """No value becomes visible before comparison.

    Inject an upset into the vocal's store *value* producer; the store
    must never drain to the memory system with the corrupted value.
    """

    PROGRAM = """
        movi r1, 0x600
        movi r2, 10
        add r3, r2, r2
        store r3, [r1]
        membar
        halt
    """

    def test_corrupted_store_value_never_escapes(self):
        for after in range(1, 4):
            system = build([self.PROGRAM], mode=Mode.REUNION)
            injector = FaultInjector(seed=after)
            injector.attach(system.vocal_cores[0])
            injector.inject_once(after=after)
            system.run_until_idle(max_cycles=200_000)
            assert not system.failed
            # The coherent value of M[0x600] is the golden 20 — in the
            # vocal L1, the L2, or memory, wherever it now lives.
            reply = system.controller.synchronizing_access(
                system.vocal_cores[0].core_id,
                system.cores[1].core_id,
                0x600 >> 6,
                system.now,
            )
            assert reply.data[0] == 20


class TestDefinition9MuteInitialization:
    """Phase two initializes the mute ARF from the vocal's."""

    def test_phase2_copies_vocal_arf(self):
        program = "movi r1, 7\nmovi r2, 9\nadd r3, r1, r2\nhalt"
        system = build([program], mode=Mode.REUNION)
        pair = system.pairs[0]
        # Force phase 2 by corrupting the mute's ARF out from under it
        # mid-run (a modelled persistent divergence).
        system.run(15)
        system.cores[1].arf.write(1, 999)
        # Manufacture a recovery escalation directly.
        pair._schedule_recovery(system.now, escalate=False)
        system.run(3)
        pair._schedule_recovery(system.now, escalate=True)
        system.run(3)
        assert pair.phase == 2
        assert system.cores[1].arf == system.vocal_cores[0].arf or True
        system.run_until_idle(max_cycles=200_000)
        assert not system.failed
        assert system.vocal_cores[0].arf.read(3) == 16
        assert system.vocal_cores[0].arf == system.cores[1].arf
