"""Tests for external-interrupt alignment (Section 4.3).

The paper: "Reunion handles external interrupts by replicating the
request to both the vocal and mute cores.  The vocal core chooses a
fingerprint interval at which to service the interrupt.  Both processors
service the interrupt after comparing and retiring the preceding
instructions."
"""

from repro.core.pair import default_interrupt_handler
from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.config import Mode
from tests.core.helpers import build

LOOP = """
    movi r1, 400
    movi r2, 0
loop:
    add r2, r2, r1
    xor r3, r3, r2
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


class TestDefaultHandler:
    def test_handler_is_serializing_heavy(self):
        handler = default_interrupt_handler()
        serializing = sum(1 for inst in handler if inst.is_serializing)
        assert serializing >= 3  # two traps + device ack

    def test_handler_touches_only_r0(self):
        for inst in default_interrupt_handler():
            assert not inst.writes_reg


class TestReunionInterrupts:
    def test_both_cores_service_at_same_point(self):
        system = build([LOOP], mode=Mode.REUNION)
        system.run(60)
        target = system.pairs[0].post_interrupt()
        system.run_until_idle(max_cycles=500_000)

        vocal, mute = system.vocal_cores[0], system.cores[1]
        assert vocal.interrupts_serviced == 1
        assert mute.interrupts_serviced == 1
        assert target <= vocal.user_retired
        # Handler instructions ran on both cores.
        assert vocal.injected_retired == len(default_interrupt_handler())
        assert mute.injected_retired == len(default_interrupt_handler())

    def test_interrupt_does_not_perturb_results(self):
        golden = golden_run(assemble(LOOP))
        system = build([LOOP], mode=Mode.REUNION)
        system.run(50)
        system.pairs[0].post_interrupt()
        system.run_until_idle(max_cycles=500_000)
        vocal = system.vocal_cores[0]
        for reg in range(4):
            assert vocal.arf.read(reg) == golden.registers.read(reg)
        assert vocal.user_retired == golden.retired
        assert vocal.arf == system.cores[1].arf

    def test_interrupt_causes_no_recovery(self):
        system = build([LOOP], mode=Mode.REUNION)
        system.run(50)
        system.pairs[0].post_interrupt()
        system.run_until_idle(max_cycles=500_000)
        assert system.recoveries() == 0

    def test_multiple_interrupts(self):
        system = build([LOOP], mode=Mode.REUNION)
        system.run(50)
        system.pairs[0].post_interrupt()
        system.run(200)
        system.pairs[0].post_interrupt()
        system.run_until_idle(max_cycles=500_000)
        assert system.vocal_cores[0].interrupts_serviced == 2
        assert system.cores[1].interrupts_serviced == 2

    def test_interrupt_after_halt_never_serviced(self):
        short = "movi r1, 1\nhalt"
        system = build([short], mode=Mode.REUNION)
        system.run_until_idle(max_cycles=100_000)
        system.pairs[0].post_interrupt()
        system.run(500)
        assert system.vocal_cores[0].interrupts_serviced == 0


class TestNonRedundantInterrupts:
    def test_single_core_services(self):
        system = build([LOOP], mode=Mode.NONREDUNDANT)
        system.run(60)
        system.post_interrupt(0)
        system.run_until_idle(max_cycles=500_000)
        core = system.vocal_cores[0]
        assert core.interrupts_serviced == 1
        golden = golden_run(assemble(LOOP))
        assert core.arf.read(2) == golden.registers.read(2)
