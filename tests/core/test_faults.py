"""Soft-error injection: detection and recovery through the pair machinery."""

import pytest

from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.config import Mode
from tests.core.helpers import build

WORKLOAD = """
    movi r1, 30
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def golden_regs():
    return golden_run(assemble(WORKLOAD)).registers


class TestDetectionAndRecovery:
    @pytest.mark.parametrize("victim", ["vocal", "mute"])
    def test_single_upset_recovered(self, victim):
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(seed=7)
        core = system.vocal_cores[0] if victim == "vocal" else system.cores[1]
        injector.attach(core)
        injector.inject_once(after=40)
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert len(injector.records) == 1
        assert system.recoveries() >= 1
        golden = golden_regs()
        for reg in range(8):
            assert system.vocal_cores[0].arf.read(reg) == golden.read(reg)

    def test_periodic_upsets_recovered(self):
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(interval=50, seed=3)
        injector.attach(system.cores[1])  # mute
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert len(injector.records) >= 2
        golden = golden_regs()
        for reg in range(8):
            assert system.vocal_cores[0].arf.read(reg) == golden.read(reg)

    def test_upsets_on_both_cores_recovered(self):
        system = build([WORKLOAD], mode=Mode.REUNION)
        vocal_injector = FaultInjector(interval=70, seed=1)
        mute_injector = FaultInjector(interval=90, seed=2)
        vocal_injector.attach(system.vocal_cores[0])
        mute_injector.attach(system.cores[1])
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        golden = golden_regs()
        for reg in range(8):
            assert system.vocal_cores[0].arf.read(reg) == golden.read(reg)

    def test_fault_records_capture_flip(self):
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(seed=5)
        injector.attach(system.cores[1])
        injector.inject_once(after=10)
        system.run_until_idle(max_cycles=500_000)
        record = injector.records[0]
        assert record.original ^ record.corrupted == 1 << record.bit

    def test_nonredundant_system_corrupts_silently(self):
        """Without redundancy the same upset silently corrupts state.

        This is the negative control: it shows the recovery in the tests
        above comes from the Reunion machinery, not from luck.
        """
        golden = golden_regs()
        corrupted_runs = 0
        for after in (20, 40, 60, 80):
            system = build([WORKLOAD], mode=Mode.NONREDUNDANT)
            injector = FaultInjector(seed=7)
            injector.attach(system.vocal_cores[0])
            injector.inject_once(after=after)
            system.run_until_idle(max_cycles=500_000)
            if any(
                system.vocal_cores[0].arf.read(reg) != golden.read(reg)
                for reg in range(8)
            ):
                corrupted_runs += 1
        # Some upsets land on dead values; at least one must stick.
        assert corrupted_runs >= 1
