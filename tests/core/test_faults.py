"""Soft-error injection: detection and recovery through the pair machinery."""

import pytest

from repro.core.faults import (
    FaultInjector,
    attribute_detections,
    detection_latencies,
)
from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode
from repro.sim.options import SimOptions
from tests.core.helpers import SMALL, build

WORKLOAD = """
    movi r1, 30
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def golden_regs():
    return golden_run(assemble(WORKLOAD)).registers


class TestDetectionAndRecovery:
    @pytest.mark.parametrize("victim", ["vocal", "mute"])
    def test_single_upset_recovered(self, victim):
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(seed=7)
        core = system.vocal_cores[0] if victim == "vocal" else system.cores[1]
        injector.attach(core)
        injector.inject_once(after=40)
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert len(injector.records) == 1
        assert system.recoveries() >= 1
        golden = golden_regs()
        for reg in range(8):
            assert system.vocal_cores[0].arf.read(reg) == golden.read(reg)

    def test_periodic_upsets_recovered(self):
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(interval=50, seed=3)
        injector.attach(system.cores[1])  # mute
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert len(injector.records) >= 2
        golden = golden_regs()
        for reg in range(8):
            assert system.vocal_cores[0].arf.read(reg) == golden.read(reg)

    def test_upsets_on_both_cores_recovered(self):
        system = build([WORKLOAD], mode=Mode.REUNION)
        vocal_injector = FaultInjector(interval=70, seed=1)
        mute_injector = FaultInjector(interval=90, seed=2)
        vocal_injector.attach(system.vocal_cores[0])
        mute_injector.attach(system.cores[1])
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        golden = golden_regs()
        for reg in range(8):
            assert system.vocal_cores[0].arf.read(reg) == golden.read(reg)

    def test_fault_records_capture_flip(self):
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(seed=5)
        injector.attach(system.cores[1])
        injector.inject_once(after=10)
        system.run_until_idle(max_cycles=500_000)
        record = injector.records[0]
        assert record.original ^ record.corrupted == 1 << record.bit

    def test_nonredundant_system_corrupts_silently(self):
        """Without redundancy the same upset silently corrupts state.

        This is the negative control: it shows the recovery in the tests
        above comes from the Reunion machinery, not from luck.
        """
        golden = golden_regs()
        corrupted_runs = 0
        for after in (20, 40, 60, 80):
            system = build([WORKLOAD], mode=Mode.NONREDUNDANT)
            injector = FaultInjector(seed=7)
            injector.attach(system.vocal_cores[0])
            injector.inject_once(after=after)
            system.run_until_idle(max_cycles=500_000)
            if any(
                system.vocal_cores[0].arf.read(reg) != golden.read(reg)
                for reg in range(8)
            ):
                corrupted_runs += 1
        # Some upsets land on dead values; at least one must stick.
        assert corrupted_runs >= 1


class TestFaultTargetClasses:
    """Store-address and branch-target upsets, per-record selectable."""

    @pytest.mark.parametrize("target", ["store_addr", "branch_target"])
    @pytest.mark.parametrize("victim", ["vocal", "mute"])
    def test_target_class_detected_and_recovered(self, target, victim):
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(seed=7, target=target)
        core = system.vocal_cores[0] if victim == "vocal" else system.cores[1]
        injector.attach(core)
        injector.inject_once(after=5)
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        (record,) = injector.records
        assert record.target == target
        assert system.recoveries() >= 1
        golden = golden_regs()
        for reg in range(8):
            assert system.vocal_cores[0].arf.read(reg) == golden.read(reg)

    def test_pinned_bit_is_the_flipped_bit(self):
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(seed=7, target="store_addr", bit=40)
        injector.attach(system.cores[1])
        injector.inject_once(after=5)
        system.run_until_idle(max_cycles=500_000)
        (record,) = injector.records
        assert record.bit == 40
        assert record.original ^ record.corrupted == 1 << 40

    def test_eligibility_counts_only_the_target_class(self):
        # `after` is measured in eligible (store) instructions, so the
        # fourth store is the victim regardless of surrounding ALU ops.
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(seed=7, target="store_addr")
        injector.attach(system.cores[1])
        injector.inject_once(after=3)
        system.run_until_idle(max_cycles=500_000)
        (record,) = injector.records
        # Stores hit 0x400, 0x408, ...; the fourth store's address.
        assert record.original == 0x400 + 3 * 8

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            FaultInjector(target="flags")

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError, match="bit"):
            FaultInjector(bit=64)


class TestDetectionAttribution:
    """Events-correlated latency vs the legacy first-recovery heuristic.

    The legacy ``recovery_log`` path pairs each injection with the first
    recovery at or after it, so a second fault flushed by the *first*
    fault's rollback is silently charged a detection it never had.  The
    events path anchors each fault to the fingerprint interval that
    absorbed it and only credits that interval's own comparison (or a
    watchdog firing while the fault was live).
    """

    def _run_two_fault_storm(self):
        config = SMALL.replace(n_logical=1).with_redundancy(
            mode=Mode.REUNION, comparison_latency=10, fingerprint_interval=8
        )
        system = CMPSystem(
            config, [assemble(WORKLOAD)], options=SimOptions(trace="events")
        )
        injector = FaultInjector(interval=12, seed=9)
        injector.attach(system.cores[1])
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert len(injector.records) >= 4
        return system, injector

    def test_legacy_path_overattributes_flushed_faults(self):
        system, injector = self._run_two_fault_storm()
        events = system.obs.log.snapshot()
        legacy = detection_latencies(
            injector.records, system.pairs[0].recovery_log
        )
        correlated = detection_latencies(injector.records, events=events)
        outcomes = attribute_detections(
            injector.records, events, pair_source="pair0"
        )
        flushed = [o for o in outcomes if o.flushed]
        # Back-to-back faults: rollbacks flush later faulted intervals
        # before they compare, so the legacy count is inflated by
        # exactly the detections the events path refuses to invent.
        assert flushed
        assert len(correlated) < len(legacy)
        assert len(correlated) == sum(1 for o in outcomes if o.detected)
        for outcome in outcomes:
            assert not (outcome.flushed and outcome.detected)
            if outcome.detected and outcome.latency is not None:
                assert outcome.latency >= 0

    def test_paths_agree_when_faults_are_isolated(self):
        # Far-apart injections leave no unrelated recovery to steal:
        # both attributions must then count the same detections.
        config = SMALL.replace(n_logical=1).with_redundancy(
            mode=Mode.REUNION, comparison_latency=10, fingerprint_interval=8
        )
        system = CMPSystem(
            config, [assemble(WORKLOAD)], options=SimOptions(trace="events")
        )
        injector = FaultInjector(interval=70, seed=3)
        injector.attach(system.cores[1])
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert len(injector.records) >= 2
        legacy = detection_latencies(
            injector.records, system.pairs[0].recovery_log
        )
        correlated = detection_latencies(
            injector.records, events=system.obs.log.snapshot()
        )
        assert len(correlated) == len(legacy)

    def test_unabsorbed_fault_reports_masked(self):
        # A fault armed beyond the program's eligible instructions never
        # fires; attribution over an empty record list is empty, and an
        # absorbed=False outcome needs no event anchor.
        system = build([WORKLOAD], mode=Mode.REUNION)
        injector = FaultInjector(seed=5)
        injector.attach(system.cores[1])
        injector.inject_once(after=10_000)
        system.run_until_idle(max_cycles=500_000)
        assert injector.records == []
        assert attribute_detections([], []) == []

    def test_latencies_require_a_source(self):
        with pytest.raises(ValueError):
            detection_latencies([])
