"""Focused unit tests for pair-controller machinery: watchdog, states, stats."""

from repro.core.pair import PairState
from repro.isa import assemble
from repro.sim.config import Mode
from repro.sim.stats import Stats
from tests.core.helpers import SMALL, build

LOOP = """
    movi r1, 60
loop:
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


class TestWatchdog:
    def test_one_sided_silence_triggers_recovery(self):
        config = SMALL.with_redundancy(mode=Mode.REUNION, divergence_timeout=300)
        from repro.sim.cmp import CMPSystem

        system = CMPSystem(config.replace(n_logical=1), [assemble(LOOP)])
        # Freeze the mute artificially: it stops producing fingerprints.
        system.cores[1].halted = True
        system.run(2000)
        pair = system.pairs[0]
        assert pair.timeout_recoveries >= 1
        # Recovery unfroze the mute; the pair finishes correctly.
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert system.vocal_cores[0].arf.read(1) == 0

    def test_no_watchdog_when_both_progress(self):
        system = build([LOOP], mode=Mode.REUNION)
        system.run_until_idle(max_cycles=500_000)
        assert system.pairs[0].timeout_recoveries == 0


class TestStateMachine:
    def test_starts_and_ends_normal(self):
        system = build([LOOP], mode=Mode.REUNION)
        pair = system.pairs[0]
        assert pair.state is PairState.NORMAL
        system.run_until_idle(max_cycles=500_000)
        assert pair.state is PairState.NORMAL

    def test_recovery_transitions(self):
        system = build([LOOP], mode=Mode.REUNION)
        pair = system.pairs[0]
        system.run(40)
        pair._schedule_recovery(system.now, escalate=False)
        assert pair.state is PairState.WAIT_RECOVERY
        system.run(2)
        assert pair.state is PairState.SINGLE_STEP
        system.run_until_idle(max_cycles=500_000)
        assert pair.state is PairState.NORMAL
        assert pair.recoveries == 1
        assert system.vocal_cores[0].arf.read(1) == 0

    def test_recovery_log_records_cause(self):
        system = build([LOOP], mode=Mode.REUNION)
        pair = system.pairs[0]
        system.run(40)
        pair._schedule_recovery(system.now, escalate=False)
        system.run(5)
        assert pair.recovery_log and pair.recovery_log[0][1] == "phase1"


class TestStatsCollection:
    def test_collect_stats_prefix(self):
        system = build([LOOP], mode=Mode.REUNION)
        system.run_until_idle(max_cycles=500_000)
        stats = Stats()
        system.pairs[0].collect_stats(stats, prefix="p.")
        assert "p.recoveries" in stats
        assert "p.sync_requests" in stats

    def test_failed_pair_halts_system(self):
        system = build([LOOP], mode=Mode.REUNION)
        pair = system.pairs[0]
        system.run(30)
        # Force the unrecoverable path: escalate twice.
        pair.phase = 2
        pair._schedule_recovery(system.now, escalate=True)
        system.run(3)
        assert pair.failed
        assert system.failed and system.idle
        assert pair.failures == 1
