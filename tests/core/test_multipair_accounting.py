"""Phantom-read and input-incoherence accounting on >2-pair systems.

With one or two pairs the per-pair counters are hard to get wrong; with
four pairs sharing one fabric the failure mode worth testing is
*leakage* — a racing pair's incoherence events (recoveries, sync
requests) or a mute's phantom traffic being booked against the wrong
pair.  These tests run a 4-pair system where exactly one pair observes
a genuine race and assert the accounting stays put, on both private-
cache backends.
"""

import dataclasses

import pytest

from repro.isa import assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import CacheStyle, CoherenceStyle, Mode
from tests.core.helpers import SMALL
from tests.core.test_pair_integration import TestInputIncoherence as Race

#: Self-contained work for the bystander pairs: cold loads from a
#: private region (so their mutes raise phantom reads) but no lines
#: shared with any other pair (so they must never observe incoherence).
BYSTANDER_A = """
    .word 0xa00 5
    .word 0xa40 6
    movi r1, 0xa00
    load r2, [r1]
    load r3, [r1+64]
    add r2, r2, r3
    halt
"""

BYSTANDER_B = """
    .word 0xb00 7
    .word 0xb40 8
    movi r1, 0xb00
    load r2, [r1]
    load r3, [r1+64]
    add r2, r2, r3
    halt
"""


def _backend_config(style):
    if style == "snoopy":
        bus = dataclasses.replace(SMALL.bus, coherence=CoherenceStyle.SNOOPY)
    else:
        bus = dataclasses.replace(SMALL.bus, coherence=CoherenceStyle.DIRECTORY)
    return SMALL.replace(cache_style=CacheStyle.SNOOPY, bus=bus)


def _run_four_pairs(style):
    config = _backend_config(style).replace(n_logical=4).with_redundancy(
        mode=Mode.REUNION, comparison_latency=10
    )
    system = CMPSystem(
        config,
        [
            assemble(Race.READER),  # pair 0: observes the race
            assemble(Race.WRITER),  # pair 1: publishes payload + flag
            assemble(BYSTANDER_A),  # pairs 2-3: independent private loads
            assemble(BYSTANDER_B),
        ],
    )
    system.run_until_idle(max_cycles=300_000)
    assert not system.failed
    return system, dict(system.collect_stats().snapshot())


@pytest.mark.parametrize("style", ["snoopy", "directory"])
class TestMultiPairAccounting:
    def test_race_resolves_with_eight_cores(self, style):
        system, _ = _run_four_pairs(style)
        reader = system.vocal_cores[0]
        assert reader.arf.read(2) == 1  # saw the flag
        assert reader.arf.read(3) == 77  # and the payload

    def test_incoherence_recoveries_stay_on_the_racing_pair(self, style):
        system, snapshot = _run_four_pairs(style)
        assert system.pairs[0].recoveries >= 1
        for pair in system.pairs[2:]:
            assert pair.recoveries == 0, (
                f"bystander pair {pair.pair_id} observed phantom incoherence"
            )
        # The per-pair stats snapshot mirrors the live counters.
        for pair in system.pairs:
            assert snapshot[f"pair{pair.pair_id}.recoveries"] == pair.recoveries
            assert (
                snapshot[f"pair{pair.pair_id}.sync_requests"] == pair.sync_requests
            )

    def test_sync_requests_only_from_pairs_that_recovered(self, style):
        system, snapshot = _run_four_pairs(style)
        prefix = "bus." if style == "snoopy" else "dir."
        total_sync = snapshot.get(prefix + "sync_requests", 0)
        assert total_sync == sum(pair.sync_requests for pair in system.pairs)
        assert system.pairs[0].sync_requests >= 1
        for pair in system.pairs[2:]:
            assert pair.sync_requests == 0

    def test_every_mute_contributes_phantom_traffic(self, style):
        """All four mutes miss their cold caches, so fabric-level phantom
        counters must reflect 4 pairs' worth of traffic — not just the
        racing pair's."""
        _, snapshot = _run_four_pairs(style)
        prefix = "bus." if style == "snoopy" else "dir."
        phantoms = sum(
            value
            for key, value in snapshot.items()
            if key.startswith(prefix + "phantom_")
        )
        # Each pair's mute performs at least its program's cold misses.
        assert phantoms >= 4

    def test_bystander_registers_unaffected_by_the_race(self, style):
        system, _ = _run_four_pairs(style)
        assert system.vocal_cores[2].arf.read(2) == 11  # 5 + 6
        assert system.vocal_cores[3].arf.read(2) == 15  # 7 + 8
