"""Differential test: batched table-driven CRC vs a bit-serial reference.

The table-driven path in ``FingerprintAccumulator`` (byte-at-a-time
lookups, batched ``add_words`` loop) is an optimization of the textbook
one-bit-per-step CRC shift register.  This module implements that
shift register directly — MSB-first, one bit at a time, with the same
two-stage parity fold — and checks the production accumulator against
it word for word, across every supported CRC width and both compression
front ends.
"""

from __future__ import annotations

import random

import pytest

from repro.core.fingerprint import _POLYS, FingerprintAccumulator, fingerprint_words

_WORD_MASK_64 = (1 << 64) - 1


class BitSerialReference:
    """A CRC absorbed one bit per step — the definitional implementation.

    Mirrors the production accumulator's framing exactly: words are
    truncated to 64 bits; with ``two_stage`` the word is first folded by
    XOR down to ``bits`` bits; the (folded) value is then shifted into
    the CRC register low-byte-lane first, matching the byte order of the
    table-driven loop (``shift`` ascending over byte lanes means the
    low-order byte of the value enters the register first, and within
    each byte the MSB leads).
    """

    def __init__(self, bits: int, two_stage: bool) -> None:
        self.bits = bits
        self.two_stage = two_stage
        self.poly = _POLYS[bits]
        self.mask = (1 << bits) - 1
        self.top = 1 << (bits - 1)
        self.crc = 0

    def _shift_in_bit(self, bit: int) -> None:
        out = 1 if self.crc & self.top else 0
        self.crc = ((self.crc << 1) & self.mask) | 0
        if out ^ bit:
            self.crc ^= self.poly
        self.crc &= self.mask

    def _shift_in_byte(self, byte: int) -> None:
        for i in range(7, -1, -1):
            self._shift_in_bit((byte >> i) & 1)

    def add_word(self, word: int) -> None:
        word &= _WORD_MASK_64
        if self.two_stage:
            folded = 0
            w = word
            while w:
                folded ^= w & self.mask
                w >>= self.bits
            value, width = folded, self.bits
        else:
            value, width = word, 64
        for shift in range(0, width, 8):
            self._shift_in_byte((value >> shift) & 0xFF)

    def digest(self) -> int:
        return self.crc


def _random_words(seed: int, n: int) -> list[int]:
    rng = random.Random(seed)
    words = [rng.getrandbits(64) for _ in range(n)]
    # Edge patterns the random draw is unlikely to hit.
    words += [0, 1, _WORD_MASK_64, 1 << 63, 0x8080808080808080, (1 << 64) + 5]
    rng.shuffle(words)
    return words


@pytest.mark.parametrize("bits", sorted(_POLYS))
@pytest.mark.parametrize("two_stage", [True, False])
def test_batched_matches_bit_serial(bits: int, two_stage: bool) -> None:
    words = _random_words(seed=bits * 2 + two_stage, n=64)
    acc = FingerprintAccumulator(bits, two_stage)
    ref = BitSerialReference(bits, two_stage)
    acc.add_words(words)
    for word in words:
        ref.add_word(word)
    assert acc.digest() == ref.digest()


@pytest.mark.parametrize("bits", sorted(_POLYS))
@pytest.mark.parametrize("two_stage", [True, False])
def test_batched_matches_word_at_a_time(bits: int, two_stage: bool) -> None:
    """add_words(ws) must equal repeated add_word — same absorption order."""
    words = _random_words(seed=1000 + bits, n=48)
    batched = FingerprintAccumulator(bits, two_stage)
    serial = FingerprintAccumulator(bits, two_stage)
    batched.add_words(words)
    for word in words:
        serial.add_word(word)
    assert batched.digest() == serial.digest()


def test_batched_is_incremental() -> None:
    """Splitting a batch at any point must not change the digest."""
    words = _random_words(seed=7, n=20)
    whole = fingerprint_words(words)
    for cut in range(len(words) + 1):
        acc = FingerprintAccumulator()
        acc.add_words(words[:cut])
        acc.add_words(words[cut:])
        assert acc.digest() == whole


def test_empty_batch_is_identity() -> None:
    acc = FingerprintAccumulator()
    acc.add_word(0xDEADBEEF)
    before = acc.digest()
    acc.add_words([])
    assert acc.digest() == before


def test_order_sensitivity() -> None:
    """A CRC (unlike a plain XOR) must be order-sensitive."""
    a = fingerprint_words([1, 2, 3])
    b = fingerprint_words([3, 2, 1])
    assert a != b
