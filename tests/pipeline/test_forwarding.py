"""Targeted store-to-load forwarding and memory-ordering tests."""

from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from tests.pipeline.helpers import build_core, run_to_halt


def check(source: str, watch_regs=range(8)):
    program = assemble(source)
    golden = golden_run(program)
    core, _, _ = build_core(program)
    run_to_halt(core)
    for reg in watch_regs:
        assert core.arf.read(reg) == golden.registers.read(reg), f"r{reg}"
    return core


class TestForwarding:
    def test_forward_from_newest_of_multiple_stores(self):
        check(
            """
            movi r1, 0x100
            movi r2, 1
            movi r3, 2
            movi r4, 3
            store r2, [r1]
            store r3, [r1]
            store r4, [r1]
            load r5, [r1]      ; must see 3
            halt
            """
        )

    def test_forward_skips_different_address(self):
        check(
            """
            movi r1, 0x100
            movi r2, 9
            store r2, [r1+8]   ; different word
            load r3, [r1]      ; must see memory (0), not 9
            halt
            """
        )

    def test_load_waits_for_unresolved_store_address(self):
        # The store's address depends on a load (slow); the younger load
        # must not bypass it incorrectly.
        check(
            """
            .word 0x200 0x100
            movi r1, 0x200
            load r2, [r1]      ; r2 = 0x100 (address producer)
            movi r3, 77
            store r3, [r2]     ; store to 0x100, address known late
            movi r4, 0x100
            load r5, [r4]      ; must see 77
            halt
            """
        )

    def test_forward_across_retirement_boundary(self):
        # Store retires and sits in the drain queue; the load must still
        # observe it before it reaches the cache.
        check(
            """
            movi r1, 0x300
            movi r2, 5
            store r2, [r1]
            membar
            load r3, [r1]
            halt
            """
        )

    def test_interleaved_addresses(self):
        check(
            """
            movi r1, 0x400
            movi r2, 10
            movi r3, 20
            store r2, [r1]
            store r3, [r1+8]
            load r4, [r1]       ; 10
            load r5, [r1+8]     ; 20
            store r4, [r1+16]
            load r6, [r1+16]    ; 10
            halt
            """
        )

    def test_atomic_after_store_sees_drained_value(self):
        check(
            """
            movi r1, 0x500
            movi r2, 100
            store r2, [r1]
            movi r3, 5
            atomic r4, [r1], r3   ; serializing: drains first; r4 = 100
            load r5, [r1]         ; 105
            halt
            """
        )
