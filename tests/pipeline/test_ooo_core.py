"""Differential and behavioural tests for the out-of-order core.

The reference interpreter (:mod:`repro.isa.interpreter`) is the golden
model: any single-core program must leave identical architectural state
when run through the full timing pipeline.
"""

import pytest

from repro.isa import NUM_REGS, assemble
from repro.isa.interpreter import run as golden_run
from tests.pipeline.helpers import build_core, memory_words, run_to_halt

COUNTDOWN = """
    movi r1, 20
    movi r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

MEMORY_CHAIN = """
    .word 0x100 5
    movi r1, 0x100
    load r2, [r1]        ; 5
    addi r3, r2, 10      ; 15
    store r3, [r1+8]
    load r4, [r1+8]      ; forwarded or from cache: 15
    mul r5, r4, r2       ; 75
    store r5, [r1+16]
    halt
"""


def assert_matches_golden(source: str, watch_addrs=()):
    program = assemble(source)
    golden = golden_run(program)
    core, memory, _ = build_core(program)
    run_to_halt(core)
    for reg in range(NUM_REGS):
        assert core.arf.read(reg) == golden.registers.read(reg), f"r{reg} differs"
    got = memory_words(core, memory, watch_addrs)
    for addr in watch_addrs:
        assert got[addr] == golden.memory.get(addr, 0), f"M[{addr:#x}] differs"
    assert core.user_retired == golden.retired
    return core


class TestDifferential:
    def test_countdown_loop(self):
        assert_matches_golden(COUNTDOWN)

    def test_memory_chain_with_forwarding(self):
        assert_matches_golden(MEMORY_CHAIN, watch_addrs=(0x100, 0x108, 0x110))

    def test_branch_heavy(self):
        # Data-dependent branches exercise the predictor and squash path.
        assert_matches_golden(
            """
            movi r1, 30
            movi r2, 0
            movi r3, 0
            loop:
                andi r4, r1, 1
                beq r4, r0, even
                addi r2, r2, 1       ; odd counter
                jump next
            even:
                addi r3, r3, 1       ; even counter
            next:
                addi r1, r1, -1
                bne r1, r0, loop
            halt
            """
        )

    def test_serializing_instructions(self):
        assert_matches_golden(
            """
            movi r1, 5
            membar
            addi r1, r1, 1
            trap
            addi r1, r1, 1
            mmuop
            addi r1, r1, 1
            halt
            """
        )

    def test_atomic_fetch_add(self):
        assert_matches_golden(
            """
            .word 0x200 100
            movi r1, 0x200
            movi r2, 7
            atomic r3, [r1], r2
            load r4, [r1]
            halt
            """,
            watch_addrs=(0x200,),
        )

    def test_cas_spinlock(self):
        assert_matches_golden(
            """
            movi r1, 0x200
            spin:
                cas r2, [r1], r0, 1
                bne r2, r0, spin
            store r1, [r1+8]
            halt
            """,
            watch_addrs=(0x200, 0x208),
        )

    def test_store_load_aliasing(self):
        # Same address written twice; load must see the newest value.
        assert_matches_golden(
            """
            movi r1, 0x300
            movi r2, 1
            movi r3, 2
            store r2, [r1]
            store r3, [r1]
            load r4, [r1]
            halt
            """,
            watch_addrs=(0x300,),
        )

    def test_dependent_alu_chain(self):
        assert_matches_golden(
            """
            movi r1, 1
            add r2, r1, r1
            add r3, r2, r2
            add r4, r3, r3
            mul r5, r4, r4
            sub r6, r5, r4
            slt r7, r4, r5
            halt
            """
        )

    def test_wraparound_arithmetic(self):
        assert_matches_golden(
            """
            movi r1, -1
            addi r2, r1, 1       ; wraps to 0
            sub r3, r0, r1       ; 1
            slt r4, r1, r0       ; -1 < 0 signed
            halt
            """
        )


class TestTiming:
    def test_l1_miss_costs_more_than_hit(self):
        program = assemble(
            """
            movi r1, 0x100
            load r2, [r1]
            halt
            """
        )
        core, _, _ = build_core(program)
        cold = run_to_halt(core)

        warm_program = assemble(
            """
            movi r1, 0x100
            load r2, [r1]
            load r3, [r1]
            load r4, [r1]
            halt
            """
        )
        core2, _, _ = build_core(warm_program)
        warm = run_to_halt(core2)
        # Three loads (two warm) cost barely more than one cold load.
        assert warm < cold + 10

    def test_membar_waits_for_drain(self):
        program = assemble(
            """
            movi r1, 0x100
            store r1, [r1]
            membar
            halt
            """
        )
        core, _, _ = build_core(program)
        run_to_halt(core)
        assert core.drain_empty  # membar retired only after the drain

    def test_ipc_reasonable_on_alu_loop(self):
        program = assemble(
            """
            movi r1, 200
            movi r2, 0
            loop:
                add r2, r2, r1
                add r3, r2, r2
                add r4, r3, r1
                addi r1, r1, -1
                bne r1, r0, loop
            halt
            """
        )
        core, _, _ = build_core(program)
        cycles = run_to_halt(core)
        ipc = core.user_retired / cycles
        assert ipc > 0.8, f"IPC {ipc:.2f} suspiciously low for an ALU loop"

    def test_mispredicts_counted(self):
        # Alternating branch pattern defeats a fresh predictor initially.
        program = assemble(
            """
            movi r1, 40
            loop:
                andi r2, r1, 1
                beq r2, r0, skip
                nop
            skip:
                addi r1, r1, -1
                bne r1, r0, loop
            halt
            """
        )
        core, _, _ = build_core(program)
        run_to_halt(core)
        assert core.mispredicts > 0


class TestTLB:
    def test_hardware_tlb_miss_charged(self):
        # Touch many pages: misses with a tiny 8-entry DTLB.
        lines = ["movi r1, 0"]
        for page in range(16):
            lines.append(f"movi r2, {page << 10}")
            lines.append("load r3, [r2]")
        lines.append("halt")
        program = assemble("\n".join(lines))
        core, _, _ = build_core(program)
        run_to_halt(core)
        assert core.dtlb_misses >= 8

    def test_software_tlb_injects_handler(self):
        from tests.pipeline.helpers import TEST_CONFIG

        config = TEST_CONFIG.with_tlb(mode=__import__("repro.sim.config", fromlist=["TLBMode"]).TLBMode.SOFTWARE)
        program = assemble(
            """
            movi r1, 0x800
            load r2, [r1]
            halt
            """
        )
        core, _, _ = build_core(program, config=config)
        run_to_halt(core)
        assert core.dtlb_misses == 1
        assert core.injected_retired == 7  # 2 traps + 2 loads + 3 mmuops
        assert core.user_retired == 3  # handler not counted as user work

    def test_software_handler_result_identical_to_hardware(self):
        source = """
            .word 0x400 9
            movi r1, 0x400
            load r2, [r1]
            addi r2, r2, 1
            store r2, [r1]
            halt
        """
        from repro.sim.config import TLBMode

        from tests.pipeline.helpers import TEST_CONFIG

        hw_core, hw_memory, _ = build_core(assemble(source))
        run_to_halt(hw_core)
        sw_config = TEST_CONFIG.with_tlb(mode=TLBMode.SOFTWARE)
        sw_core, sw_memory, _ = build_core(assemble(source), config=sw_config)
        run_to_halt(sw_core)
        assert hw_core.arf.read(2) == sw_core.arf.read(2) == 10
        assert memory_words(hw_core, hw_memory, [0x400]) == memory_words(
            sw_core, sw_memory, [0x400]
        )


class TestSyntheticITLB:
    def test_schedule_triggers_injection(self):
        from repro.sim.config import TLBMode

        from tests.pipeline.helpers import TEST_CONFIG

        config = TEST_CONFIG.with_tlb(mode=TLBMode.SOFTWARE)
        program = assemble(
            """
            movi r1, 50
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
            halt
            """
        )
        core, _, _ = build_core(
            program, config=config, synthetic_itlb=lambda n: n % 25 == 0
        )
        run_to_halt(core)
        assert core.itlb_misses >= 2
        assert core.injected_retired >= 14
