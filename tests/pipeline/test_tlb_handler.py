"""Unit tests for the software TLB fast-miss handler sequence."""

from repro.isa.opcodes import Op
from repro.pipeline.tlb_handler import TSB_BASE, handler_sequence, tsb_address


class TestHandlerShape:
    def test_paper_instruction_mix(self):
        """Two traps, three non-idempotent MMU requests (Section 5.5)."""
        handler = handler_sequence(page=5)
        ops = [inst.op for inst in handler]
        assert ops.count(Op.TRAP) == 2
        assert ops.count(Op.MMUOP) == 3
        assert ops.count(Op.LOAD) == 2
        assert ops[0] is Op.TRAP and ops[-1] is Op.TRAP  # entry and exit

    def test_serializing_majority(self):
        handler = handler_sequence(page=0)
        assert sum(inst.is_serializing for inst in handler) == 5

    def test_handler_clobbers_nothing(self):
        for inst in handler_sequence(page=9):
            assert not inst.writes_reg  # loads target r0

    def test_tsb_loads_target_the_faulting_pages_entry(self):
        handler = handler_sequence(page=7)
        loads = [inst for inst in handler if inst.op is Op.LOAD]
        assert loads[0].imm == tsb_address(7, 0)
        assert loads[1].imm == tsb_address(7, 1)


class TestTSBAddressing:
    def test_addresses_in_tsb_region(self):
        for page in (0, 1, 12345, 10**9):
            addr = tsb_address(page, 0)
            assert addr >= TSB_BASE
            assert addr % 8 == 0

    def test_entries_are_16_bytes_apart(self):
        assert tsb_address(3, 1) - tsb_address(3, 0) == 8
        assert tsb_address(4, 0) - tsb_address(3, 0) == 16

    def test_pages_hash_onto_finite_tsb(self):
        """Distant pages share TSB lines, like a real direct-mapped TSB."""
        from repro.pipeline.tlb_handler import TSB_LINES

        assert tsb_address(1, 0) == tsb_address(1 + TSB_LINES, 0)
