"""Unit tests for the gshare branch predictor."""

import pytest

from repro.pipeline.branch_predictor import BranchPredictor


class TestBranchPredictor:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BranchPredictor(entries=100)

    def test_learns_always_taken(self):
        predictor = BranchPredictor(entries=16)
        for _ in range(8):
            predictor.update(5, taken=True)
        assert predictor.predict(5)

    def test_learns_never_taken(self):
        predictor = BranchPredictor(entries=16)
        for _ in range(8):
            predictor.update(5, taken=False)
        assert not predictor.predict(5)

    def test_counters_saturate(self):
        predictor = BranchPredictor(entries=16)
        for _ in range(100):
            predictor.update(3, taken=True)
        # One not-taken outcome should not flip a saturated counter.
        predictor.update(3, taken=False)
        assert predictor.predict(3)

    def test_history_disambiguates_correlated_branches(self):
        """Alternating pattern becomes predictable through global history."""
        predictor = BranchPredictor(entries=64)
        pattern = [True, False] * 200
        correct = 0
        for taken in pattern:
            if predictor.predict(9) == taken:
                correct += 1
            predictor.update(9, taken)
        # After warm-up, gshare locks onto the alternation.
        assert correct > len(pattern) * 0.6

    def test_distinct_pcs_do_not_interfere_much(self):
        predictor = BranchPredictor(entries=256)
        for _ in range(10):
            predictor.update(1, taken=True)
            predictor.update(2, taken=False)
        # (History mixing can alias; check the dominant behaviour.)
        taken_votes = sum(predictor.predict(1) for _ in range(1))
        assert taken_votes >= 0  # smoke: no exceptions, bounded state
