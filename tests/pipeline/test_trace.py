"""Tests for the pipeline tracer."""

from repro.isa import assemble
from repro.pipeline.trace import PipelineTracer
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode
from tests.core.helpers import SMALL
from tests.pipeline.helpers import build_core, run_to_halt

PROGRAM = """
    movi r1, 4
    movi r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def traced_core():
    core, memory, stats = build_core(assemble(PROGRAM))
    tracer = PipelineTracer()
    core.tracer = tracer
    run_to_halt(core)
    return core, tracer


class TestRecording:
    def test_lifecycle_ordering(self):
        _, tracer = traced_core()
        for record in tracer.retired_records():
            assert record.dispatched <= record.issued <= record.completed <= record.retired

    def test_all_retired_instructions_traced(self):
        core, tracer = traced_core()
        assert len(tracer.retired_records()) == core.user_retired

    def test_squashed_instructions_marked(self):
        core, tracer = traced_core()
        if core.mispredicts:
            assert any(r.squashed for r in tracer._records.values())

    def test_mean_lifetime_positive(self):
        _, tracer = traced_core()
        assert tracer.mean_lifetime() > 0

    def test_capacity_bounded(self):
        tracer = PipelineTracer(capacity=5)
        core, _, _ = build_core(assemble(PROGRAM))
        core.tracer = tracer
        run_to_halt(core)
        assert len(tracer) <= 5


class TestRendering:
    def test_waterfall_renders(self):
        _, tracer = traced_core()
        out = tracer.render(last=8)
        assert "D" in out and "R" in out
        assert "cycle" in out.splitlines()[0]

    def test_empty_tracer(self):
        assert "no instructions" in PipelineTracer().render()


class TestCheckOccupancyVisible:
    def test_reunion_lifetimes_exceed_nonredundant(self):
        """The check stage extends dispatch-to-retire time by roughly the
        comparison latency — visible directly in the trace (Sec. 5.2)."""
        lifetimes = {}
        for mode, latency in ((Mode.NONREDUNDANT, 0), (Mode.REUNION, 20)):
            config = SMALL.replace(n_logical=1).with_redundancy(
                mode=mode, comparison_latency=latency
            )
            system = CMPSystem(config, [assemble(PROGRAM)])
            tracer = PipelineTracer()
            system.vocal_cores[0].tracer = tracer
            system.run_until_idle(max_cycles=100_000)
            lifetimes[mode] = tracer.mean_lifetime()
        assert lifetimes[Mode.REUNION] >= lifetimes[Mode.NONREDUNDANT] + 10
