"""Property-based differential testing: random programs, golden results.

Hypothesis generates random (terminating) programs over the safe subset
of the ISA; the full out-of-order timing pipeline must leave exactly the
architectural state the in-order reference interpreter computes —
registers and memory — regardless of speculation, forwarding, cache
behavior, or TLB activity.  This is the strongest single check on the
pipeline's value accuracy, which everything in Reunion depends on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import NUM_REGS, Instruction, Op, Program
from repro.isa.interpreter import run as golden_run
from tests.pipeline.helpers import build_core, memory_words, run_to_halt

# Register conventions for generated programs:
#   r1  loop counter          r2  data base pointer
#   r3..r11 data registers (sources and destinations)
LOOP_REG = 1
BASE_REG = 2
DATA_REGS = list(range(3, 12))
DATA_BASE = 0x2000
DATA_WORDS = 16  # offsets 0..120

alu_ops = st.sampled_from([Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.MUL, Op.SLT])
imm_ops = st.sampled_from([Op.ADDI, Op.ANDI, Op.ORI, Op.XORI])
branch_ops = st.sampled_from([Op.BEQ, Op.BNE, Op.BLT, Op.BGE])
data_reg = st.sampled_from(DATA_REGS)
offset = st.integers(min_value=0, max_value=DATA_WORDS - 1).map(lambda i: i * 8)


@st.composite
def body_instruction(draw):
    """One random body instruction descriptor."""
    kind = draw(
        st.sampled_from(
            ["alu", "alu", "alu", "imm", "load", "store", "branch", "serial", "atomic"]
        )
    )
    if kind == "alu":
        return ("alu", draw(alu_ops), draw(data_reg), draw(data_reg), draw(data_reg))
    if kind == "imm":
        return (
            "imm",
            draw(imm_ops),
            draw(data_reg),
            draw(data_reg),
            draw(st.integers(min_value=-100, max_value=100)),
        )
    if kind == "load":
        return ("load", draw(data_reg), draw(offset))
    if kind == "store":
        return ("store", draw(data_reg), draw(offset))
    if kind == "branch":
        # Forward skip over one instruction, resolved at build time.
        return ("branch", draw(branch_ops), draw(data_reg), draw(data_reg))
    if kind == "atomic":
        return ("atomic", draw(data_reg), draw(data_reg), draw(offset))
    return ("serial", draw(st.sampled_from([Op.MEMBAR, Op.TRAP, Op.MMUOP])))


@st.composite
def random_program(draw):
    """A terminating program: prologue, random body, countdown epilogue."""
    iterations = draw(st.integers(min_value=1, max_value=4))
    body = draw(st.lists(body_instruction(), min_size=1, max_size=25))
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**16),
            min_size=len(DATA_REGS),
            max_size=len(DATA_REGS),
        )
    )

    instructions = [
        Instruction(Op.MOVI, rd=LOOP_REG, imm=iterations),
        Instruction(Op.MOVI, rd=BASE_REG, imm=DATA_BASE),
    ]
    for reg, seed in zip(DATA_REGS, seeds):
        instructions.append(Instruction(Op.MOVI, rd=reg, imm=seed))
    loop_start = len(instructions)

    for descriptor in body:
        kind = descriptor[0]
        if kind == "alu":
            _, op, rd, rs1, rs2 = descriptor
            instructions.append(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))
        elif kind == "imm":
            _, op, rd, rs1, imm = descriptor
            instructions.append(Instruction(op, rd=rd, rs1=rs1, imm=imm))
        elif kind == "load":
            _, rd, off = descriptor
            instructions.append(Instruction(Op.LOAD, rd=rd, rs1=BASE_REG, imm=off))
        elif kind == "store":
            _, rs, off = descriptor
            instructions.append(Instruction(Op.STORE, rs2=rs, rs1=BASE_REG, imm=off))
        elif kind == "branch":
            _, op, rs1, rs2 = descriptor
            # Skip exactly the next instruction (a nop filler).
            instructions.append(
                Instruction(op, rs1=rs1, rs2=rs2, target=len(instructions) + 2)
            )
            instructions.append(Instruction(Op.NOP))
        elif kind == "atomic":
            _, rd, rs2, off = descriptor
            instructions.append(
                Instruction(Op.ATOMIC, rd=rd, rs1=BASE_REG, rs2=rs2, imm=off)
            )
        else:
            instructions.append(Instruction(descriptor[1]))

    instructions.append(Instruction(Op.ADDI, rd=LOOP_REG, rs1=LOOP_REG, imm=-1))
    instructions.append(
        Instruction(Op.BNE, rs1=LOOP_REG, rs2=0, target=loop_start)
    )
    instructions.append(Instruction(Op.HALT))
    image = {DATA_BASE + 8 * i: (i * 0x1234 + 1) for i in range(DATA_WORDS)}
    return Program(instructions=instructions, memory_image=image, name="random")


@given(program=random_program())
@settings(max_examples=60, deadline=None)
def test_pipeline_matches_interpreter(program):
    golden = golden_run(program, max_instructions=50_000)
    assert golden.halted, "generated program must terminate"

    core, memory, _ = build_core(program)
    run_to_halt(core, max_cycles=300_000)

    for reg in range(NUM_REGS):
        assert core.arf.read(reg) == golden.registers.read(reg), f"r{reg} differs"
    watch = [DATA_BASE + 8 * i for i in range(DATA_WORDS)]
    got = memory_words(core, memory, watch)
    for addr in watch:
        assert got[addr] == golden.memory.get(addr, 0), f"M[{addr:#x}] differs"
    assert core.user_retired == golden.retired
