"""Shared helpers for pipeline tests: build and run a single core."""

from __future__ import annotations

from repro.isa.program import Program
from repro.memory import CoreMemPort, MainMemory, SharedL2Controller
from repro.pipeline.ooo_core import OoOCore
from repro.sim.config import (
    CoreConfig,
    L1Config,
    L2Config,
    MemoryConfig,
    SystemConfig,
    TLBConfig,
    TLBMode,
)
from repro.sim.stats import Stats

TEST_CONFIG = SystemConfig(
    n_logical=1,
    core=CoreConfig(width=4, rob_size=32, store_buffer_size=8, frontend_latency=3),
    l1=L1Config(size_bytes=1024, assoc=2, load_to_use=2, mshrs=4),
    l2=L2Config(size_bytes=16 * 1024, assoc=8, banks=2, hit_latency=8, mshrs=8),
    tlb=TLBConfig(itlb_entries=8, dtlb_entries=8, page_bits=10, hw_fill_latency=10),
    memory=MemoryConfig(latency=40),
)


def build_core(program: Program, config: SystemConfig = TEST_CONFIG, **core_kwargs):
    """One vocal core wired to its own memory system."""
    stats = Stats()
    memory = MainMemory(latency=config.memory.latency, line_bytes=config.l2.line_bytes)
    memory.load_image(program.memory_image)
    controller = SharedL2Controller(config.l2, memory, stats)
    port = CoreMemPort(0, config.l1, config.tlb, controller, stats)
    core = OoOCore(0, config, program, port, **core_kwargs)
    return core, memory, stats


def run_to_halt(core: OoOCore, max_cycles: int = 200_000) -> int:
    """Step the core until it is idle; returns the cycle count."""
    now = 0
    while not core.idle:
        core.step(now)
        now += 1
        if now >= max_cycles:
            raise AssertionError(f"core did not halt within {max_cycles} cycles")
    return now


def memory_words(core: OoOCore, memory: MainMemory, addrs) -> dict[int, int]:
    """Architectural memory values as seen through the core's hierarchy."""
    out = {}
    for addr in addrs:
        line_addr = addr >> 6
        line = core.port.l1.lookup(line_addr)
        if line is not None:
            out[addr] = line.data[(addr >> 3) & 7]
            continue
        l2_line = core.port.controller.cache.lookup(line_addr)
        if l2_line is not None:
            out[addr] = l2_line.data[(addr >> 3) & 7]
            continue
        out[addr] = memory.read_word(addr)
    return out
