"""Unit and property tests for ISA execution semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import WORD_MASK, Op
from repro.isa.semantics import (
    alu_result,
    atomic_result,
    branch_taken,
    effective_address,
    to_signed,
)

words = st.integers(min_value=0, max_value=WORD_MASK)


class TestAlu:
    def test_basic_arithmetic(self):
        assert alu_result(Op.ADD, 2, 3, 0) == 5
        assert alu_result(Op.SUB, 2, 3, 0) == WORD_MASK  # wraps to -1
        assert alu_result(Op.MUL, 7, 6, 0) == 42
        assert alu_result(Op.AND, 0b1100, 0b1010, 0) == 0b1000
        assert alu_result(Op.OR, 0b1100, 0b1010, 0) == 0b1110
        assert alu_result(Op.XOR, 0b1100, 0b1010, 0) == 0b0110

    def test_shifts_mask_amount(self):
        assert alu_result(Op.SLL, 1, 4, 0) == 16
        assert alu_result(Op.SRL, 16, 4, 0) == 1
        # Shift amounts use only the low 6 bits, like real 64-bit ISAs.
        assert alu_result(Op.SLL, 1, 64, 0) == 1

    def test_slt_is_signed(self):
        minus_one = WORD_MASK
        assert alu_result(Op.SLT, minus_one, 0, 0) == 1
        assert alu_result(Op.SLT, 0, minus_one, 0) == 0

    def test_immediates(self):
        assert alu_result(Op.ADDI, 10, 0, -3) == 7
        assert alu_result(Op.MOVI, 0, 0, 99) == 99
        assert alu_result(Op.ORI, 0b01, 0, 0b10) == 0b11

    def test_non_alu_raises(self):
        with pytest.raises(ValueError):
            alu_result(Op.LOAD, 1, 2, 0)

    @given(a=words, b=words)
    def test_results_always_fit_in_word(self, a, b):
        for op in (Op.ADD, Op.SUB, Op.MUL, Op.SLL):
            assert 0 <= alu_result(op, a, b, 0) <= WORD_MASK

    @given(a=words, b=words)
    def test_xor_involutive(self, a, b):
        assert alu_result(Op.XOR, alu_result(Op.XOR, a, b, 0), b, 0) == a


class TestBranches:
    def test_eq_ne(self):
        assert branch_taken(Op.BEQ, 5, 5)
        assert not branch_taken(Op.BEQ, 5, 6)
        assert branch_taken(Op.BNE, 5, 6)

    def test_signed_comparison(self):
        minus_two = (-2) & WORD_MASK
        assert branch_taken(Op.BLT, minus_two, 1)
        assert branch_taken(Op.BGE, 1, minus_two)

    @given(a=words, b=words)
    def test_blt_bge_partition(self, a, b):
        assert branch_taken(Op.BLT, a, b) != branch_taken(Op.BGE, a, b)

    def test_non_branch_raises(self):
        with pytest.raises(ValueError):
            branch_taken(Op.ADD, 1, 2)


class TestMemorySemantics:
    def test_effective_address_word_aligned(self):
        assert effective_address(0x1003, 0) == 0x1000
        assert effective_address(0x1000, 8) == 0x1008
        assert effective_address(0x1000, -8) == 0xFF8

    @given(base=words, imm=st.integers(min_value=-4096, max_value=4096))
    def test_effective_address_always_aligned(self, base, imm):
        assert effective_address(base, imm) % 8 == 0

    def test_fetch_add(self):
        rd, new = atomic_result(Op.ATOMIC, old=10, rs2_value=5, imm=0)
        assert rd == 10 and new == 15

    def test_cas_success_and_failure(self):
        rd, new = atomic_result(Op.CAS, old=0, rs2_value=0, imm=1)
        assert rd == 0 and new == 1
        rd, new = atomic_result(Op.CAS, old=7, rs2_value=0, imm=1)
        assert rd == 7 and new is None


class TestSigned:
    @given(value=words)
    def test_to_signed_round_trip(self, value):
        assert to_signed(value) & WORD_MASK == value
