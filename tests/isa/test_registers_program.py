"""Tests for the register file and program container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import NUM_REGS, Instruction, Op, Program, RegisterFile, WORD_MASK

words = st.integers(min_value=0, max_value=WORD_MASK)
regs = st.integers(min_value=1, max_value=NUM_REGS - 1)


class TestRegisterFile:
    def test_r0_hardwired(self):
        rf = RegisterFile()
        rf.write(0, 123)
        assert rf.read(0) == 0

    def test_write_read(self):
        rf = RegisterFile()
        rf.write(5, 42)
        assert rf.read(5) == 42

    @given(reg=regs, value=st.integers(min_value=-(1 << 70), max_value=1 << 70))
    def test_values_masked_to_64_bits(self, reg, value):
        rf = RegisterFile()
        rf.write(reg, value)
        assert 0 <= rf.read(reg) <= WORD_MASK

    def test_snapshot_restore(self):
        rf = RegisterFile()
        rf.write(3, 7)
        snap = rf.snapshot()
        rf.write(3, 9)
        rf.restore(snap)
        assert rf.read(3) == 7

    def test_restore_validates_length(self):
        with pytest.raises(ValueError):
            RegisterFile().restore([0] * 3)

    def test_copy_from(self):
        """Definition 9: mute register initialization."""
        vocal, mute = RegisterFile(), RegisterFile()
        vocal.write(7, 99)
        mute.write(7, 1)
        mute.copy_from(vocal)
        assert mute == vocal
        vocal.write(7, 50)  # no aliasing afterwards
        assert mute.read(7) == 99

    def test_equality(self):
        a, b = RegisterFile(), RegisterFile()
        assert a == b
        a.write(1, 5)
        assert a != b
        assert (a == object()) is False or True  # NotImplemented path

    def test_init_from_values(self):
        rf = RegisterFile([9] * NUM_REGS)
        assert rf.read(0) == 0  # r0 forced to zero
        assert rf.read(1) == 9

    def test_init_wrong_length(self):
        with pytest.raises(ValueError):
            RegisterFile([1, 2, 3])


class TestProgram:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Program(instructions=[])

    def test_entry_bounds(self):
        with pytest.raises(ValueError):
            Program(instructions=[Instruction(Op.HALT)], entry=5)

    def test_branch_target_validated(self):
        with pytest.raises(ValueError):
            Program(instructions=[Instruction(Op.BEQ, rs1=1, rs2=2, target=9)])

    def test_unaligned_image_rejected(self):
        with pytest.raises(ValueError):
            Program(instructions=[Instruction(Op.HALT)], memory_image={3: 1})

    def test_image_values_masked(self):
        program = Program(
            instructions=[Instruction(Op.HALT)], memory_image={0: -1}
        )
        assert program.memory_image[0] == WORD_MASK

    def test_out_of_range_fetch_halts(self):
        program = Program(instructions=[Instruction(Op.NOP)])
        assert program.fetch(99).op is Op.HALT
        assert program.fetch(-1).op is Op.HALT

    def test_len(self):
        program = Program(instructions=[Instruction(Op.NOP), Instruction(Op.HALT)])
        assert len(program) == 2
