"""Tests for the programmatic program builder."""

import pytest

from repro.isa import Op, ProgramBuilder
from repro.isa.interpreter import run as golden_run


class TestBuilder:
    def test_forward_labels_resolved(self):
        builder = ProgramBuilder()
        builder.movi(1, 1)
        builder.beq(1, 1, "end")  # forward reference
        builder.movi(2, 99)
        builder.label("end")
        builder.halt()
        program = builder.build()
        assert program.instructions[1].target == 3
        result = golden_run(program)
        assert result.registers.read(2) == 0  # skipped

    def test_backward_labels(self):
        builder = ProgramBuilder()
        builder.movi(1, 3)
        builder.label("loop")
        builder.addi(1, 1, -1)
        builder.bne(1, 0, "loop")
        builder.halt()
        assert golden_run(builder.build()).registers.read(1) == 0

    def test_undefined_label_rejected(self):
        builder = ProgramBuilder()
        builder.jump("nowhere")
        builder.halt()
        with pytest.raises(ValueError, match="undefined label"):
            builder.build()

    def test_duplicate_label_rejected(self):
        builder = ProgramBuilder()
        builder.label("a")
        with pytest.raises(ValueError, match="duplicate"):
            builder.label("a")

    def test_entry_label(self):
        builder = ProgramBuilder()
        builder.nop()
        builder.label("start")
        builder.halt()
        builder.entry("start")
        assert builder.build().entry == 1

    def test_undefined_entry_rejected(self):
        builder = ProgramBuilder()
        builder.halt()
        builder.entry("missing")
        with pytest.raises(ValueError, match="undefined entry"):
            builder.build()

    def test_word_and_reg_helpers(self):
        builder = ProgramBuilder()
        builder.word(0x100, 7).reg(5, 0x100)
        builder.load(2, 5)
        builder.halt()
        result = golden_run(builder.build())
        assert result.registers.read(2) == 7

    def test_here_tracks_position(self):
        builder = ProgramBuilder()
        assert builder.here == 0
        builder.nop()
        assert builder.here == 1

    def test_all_instruction_helpers(self):
        builder = ProgramBuilder()
        builder.movi(1, 1).addi(2, 1, 1).add(3, 1, 2)
        builder.store(3, 1).load(4, 1)
        builder.atomic(5, 1, 2).cas(6, 1, 2, 9)
        builder.membar().trap().mmuop().nop()
        builder.alu(Op.MUL, 7, 3, 3)
        builder.blt(1, 2, "end").bge(2, 1, "end")
        builder.beq(0, 0, "end").bne(1, 0, "end")
        builder.jump("end")
        builder.label("end")
        builder.halt()
        program = builder.build()
        assert len(program) == 18
