"""Tests for the text assembler."""

import pytest

from repro.isa import AssemblerError, Op, assemble


class TestAssemble:
    def test_simple_program(self):
        program = assemble(
            """
            movi r1, 10
            addi r1, r1, -1
            halt
            """
        )
        assert len(program) == 3
        assert program.instructions[0].op is Op.MOVI
        assert program.instructions[1].imm == -1

    def test_labels_and_branches(self):
        program = assemble(
            """
            start:
                movi r1, 3
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
                jump done
            done:
                halt
            """
        )
        bne = program.instructions[2]
        assert bne.op is Op.BNE and bne.target == 1
        jump = program.instructions[3]
        assert jump.target == 4

    def test_memory_operands(self):
        program = assemble(
            """
            load r2, [r1+8]
            store r2, [r1]
            store r3, [r4-16]
            atomic r5, [r6+0], r7
            halt
            """
        )
        load = program.instructions[0]
        assert (load.rd, load.rs1, load.imm) == (2, 1, 8)
        store = program.instructions[1]
        assert (store.rs2, store.rs1, store.imm) == (2, 1, 0)
        assert program.instructions[2].imm == -16
        atomic = program.instructions[3]
        assert (atomic.rd, atomic.rs1, atomic.rs2) == (5, 6, 7)

    def test_directives(self):
        program = assemble(
            """
            .entry start
            .word 0x1000 42
            .reg r5 0x1000
            nop
            start:
                halt
            """
        )
        assert program.entry == 1
        assert program.memory_image[0x1000] == 42
        assert program.initial_regs[5] == 0x1000

    def test_comments_ignored(self):
        program = assemble("nop ; trailing\n# whole line\nhalt")
        assert len(program) == 2

    def test_serializing_mnemonics(self):
        program = assemble("membar\ntrap\nmmuop\nhalt")
        assert [i.op for i in program.instructions[:3]] == [Op.MEMBAR, Op.TRAP, Op.MMUOP]
        assert all(i.is_serializing for i in program.instructions[:3])


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("movi r99, 0")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("jump nowhere\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\nnop\na:\nhalt")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("add r1, r2")

    def test_branch_target_out_of_range(self):
        with pytest.raises(ValueError):
            assemble("beq r1, r2, 99\nhalt")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nbogus op\nhalt")
