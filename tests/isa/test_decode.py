"""Decode-table equivalence: the F_* bitmask vs the Instruction it summarizes.

The structure-of-arrays hot loop (``REPRO_HOTLOOP=soa``) trusts one int
bitmask per static instruction instead of chasing ``Instruction``
attributes per dynamic instance.  These tests pin the mask to the object
view over every opcode and operand shape, in both consistency modes, so
the two hot loops can never read different classifications for the same
instruction.
"""

from __future__ import annotations

import pytest

from repro.isa.decode import (
    F_ALU,
    F_ATOMIC,
    F_BRANCH,
    F_CONTROL,
    F_HALT,
    F_IMM_FORM,
    F_JUMP,
    F_LOAD,
    F_MEM,
    F_MUL,
    F_NEEDS1,
    F_NEEDS2,
    F_SER,
    F_STORE,
    F_WINDOW_END,
    F_WRITES,
    DecodedProgram,
    decode_program,
    flags_of,
)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program


def _corpus() -> list[Instruction]:
    """Every opcode crossed with the operand shapes that matter.

    rd/rs1/rs2 each toggle between the hard-wired zero register and a
    real one — ``writes_reg`` and the operand-capture predicates all
    hinge on the zero cases.
    """
    out = []
    for op in Op:
        for rd in (0, 3):
            for rs1 in (0, 1):
                for rs2 in (0, 2):
                    out.append(
                        Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=5, target=1)
                    )
    return out


@pytest.mark.parametrize("sc_mode", [False, True])
def test_flags_match_instruction_predicates(sc_mode: bool) -> None:
    for inst in _corpus():
        f = flags_of(inst, sc_mode)
        op = inst.op
        assert bool(f & F_ALU) == inst.is_alu, inst
        assert bool(f & F_MEM) == inst.is_mem, inst
        assert bool(f & F_LOAD) == inst.is_load, inst
        assert bool(f & F_ATOMIC) == inst.is_atomic, inst
        assert bool(f & F_BRANCH) == inst.is_branch, inst
        assert bool(f & F_CONTROL) == inst.is_control, inst
        assert bool(f & F_JUMP) == (op is Op.JUMP), inst
        assert bool(f & F_HALT) == (op is Op.HALT), inst
        assert bool(f & F_WRITES) == inst.writes_reg, inst
        assert bool(f & F_IMM_FORM) == inst.imm_form, inst
        assert bool(f & F_MUL) == (op is Op.MUL), inst
        assert bool(f & F_SER) == (
            inst.is_serializing or (sc_mode and inst.is_store)
        ), inst
        assert bool(f & F_WINDOW_END) == (
            inst.is_mem or inst.is_serializing or op is Op.HALT
        ), inst


def test_store_bit_excludes_atomics() -> None:
    """F_STORE gates store-buffer entry: plain STOREs only.

    Atomics report ``is_store`` (they write memory) but never occupy the
    store buffer — they serialize instead.  The mask must keep the two
    routes as distinct as the object loop's ``op is Op.STORE`` checks.
    """
    store = flags_of(Instruction(Op.STORE, rs1=1, rs2=2), sc_mode=False)
    assert store & F_STORE
    for op in (Op.ATOMIC, Op.CAS):
        f = flags_of(Instruction(op, rd=3, rs1=1, rs2=2), sc_mode=False)
        assert f & F_ATOMIC
        assert not f & F_STORE
        assert f & F_SER  # atomics always serialize


def test_writes_requires_nonzero_rd() -> None:
    """r0 is hard-wired: an rd=0 destination must not set F_WRITES."""
    assert flags_of(Instruction(Op.ADD, rd=3, rs1=1, rs2=2), False) & F_WRITES
    assert not flags_of(Instruction(Op.ADD, rd=0, rs1=1, rs2=2), False) & F_WRITES
    # Non-writing opcodes never set it, rd notwithstanding.
    assert not flags_of(Instruction(Op.STORE, rd=0, rs1=1, rs2=2), False) & F_WRITES


@pytest.mark.parametrize("sc_mode", [False, True])
def test_sc_mode_store_serialization(sc_mode: bool) -> None:
    """Under SC every store serializes retirement (Section 5.5)."""
    store = flags_of(Instruction(Op.STORE, rs1=1, rs2=2), sc_mode)
    assert bool(store & F_SER) == sc_mode
    # Loads never serialize in either mode; MEMBAR always does.
    assert not flags_of(Instruction(Op.LOAD, rd=3, rs1=1), sc_mode) & F_SER
    assert flags_of(Instruction(Op.MEMBAR), sc_mode) & F_SER


@pytest.mark.parametrize("sc_mode", [False, True])
def test_operand_capture_predicates(sc_mode: bool) -> None:
    """F_NEEDS1/F_NEEDS2 mirror the dispatch stage's capture conditions."""
    for inst in _corpus():
        f = flags_of(inst, sc_mode)
        needs1 = inst.rs1 != 0 and (inst.is_alu or inst.is_mem or inst.is_branch)
        needs2 = inst.rs2 != 0 and (
            (inst.is_alu and not inst.imm_form)
            or inst.is_branch
            or inst.op is Op.STORE
            or inst.op is Op.ATOMIC
            or inst.op is Op.CAS
        )
        assert bool(f & F_NEEDS1) == needs1, inst
        assert bool(f & F_NEEDS2) == needs2, inst


def _program() -> Program:
    return Program(
        instructions=[
            Instruction(Op.MOVI, rd=1, imm=7),
            Instruction(Op.ADD, rd=2, rs1=1, rs2=1),
            Instruction(Op.STORE, rs1=1, rs2=2),
            Instruction(Op.HALT),
        ]
    )


def test_decoded_rows_match_per_instruction_flags() -> None:
    program = _program()
    decoded = DecodedProgram(program, sc_mode=False)
    assert decoded.n == len(program.instructions)
    for pc, inst in enumerate(program.instructions):
        assert decoded.flags[pc] == flags_of(inst, False)
        assert decoded.rs1[pc] == inst.rs1
        assert decoded.rs2[pc] == inst.rs2
        assert decoded.rd[pc] == inst.rd
        assert decoded.imm[pc] == inst.imm
        assert decoded.target[pc] == inst.target
        assert decoded.inst[pc] is inst


def test_out_of_range_row_is_halt() -> None:
    """Row ``n`` must describe the wild-PC HALT Program.fetch substitutes."""
    program = _program()
    decoded = DecodedProgram(program, sc_mode=False)
    fallback = decoded.inst[decoded.n]
    assert fallback.op is Op.HALT
    assert decoded.flags[decoded.n] & F_HALT


def test_decode_cache_is_per_program_and_mode() -> None:
    program = _program()
    a = decode_program(program, sc_mode=False)
    assert decode_program(program, sc_mode=False) is a  # cached
    b = decode_program(program, sc_mode=True)
    assert b is not a  # SC changes F_SER on the store row
    assert b.flags[2] & F_SER
    assert not a.flags[2] & F_SER
    other = _program()
    assert decode_program(other, sc_mode=False) is not a  # per-instance
