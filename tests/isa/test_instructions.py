"""Unit tests for instruction representation and classification."""

import pytest

from repro.isa import Instruction, Op


class TestClassification:
    def test_alu_ops(self):
        assert Instruction(Op.ADD, rd=1, rs1=2, rs2=3).is_alu
        assert Instruction(Op.MOVI, rd=1, imm=5).is_alu
        assert not Instruction(Op.LOAD, rd=1, rs1=2).is_alu

    def test_memory_ops(self):
        load = Instruction(Op.LOAD, rd=1, rs1=2)
        store = Instruction(Op.STORE, rs1=2, rs2=3)
        atomic = Instruction(Op.ATOMIC, rd=1, rs1=2, rs2=3)
        assert load.is_mem and load.is_load and not load.is_store
        assert store.is_mem and store.is_store and not store.is_load
        assert atomic.is_mem and atomic.is_load and atomic.is_store

    def test_serializing_set_matches_paper(self):
        """Traps, membars, atomics and non-idempotent accesses serialize."""
        for op in (Op.TRAP, Op.MEMBAR, Op.MMUOP):
            assert Instruction(op).is_serializing
        assert Instruction(Op.ATOMIC, rd=1, rs1=2).is_serializing
        assert Instruction(Op.CAS, rd=1, rs1=2).is_serializing
        for op in (Op.ADD, Op.NOP, Op.HALT):
            assert not Instruction(op).is_serializing
        assert not Instruction(Op.LOAD, rd=1, rs1=2).is_serializing
        assert not Instruction(Op.STORE, rs1=1, rs2=2).is_serializing

    def test_branches_are_control(self):
        branch = Instruction(Op.BEQ, rs1=1, rs2=2, target=0)
        assert branch.is_branch and branch.is_control
        jump = Instruction(Op.JUMP, target=0)
        assert jump.is_control and not jump.is_branch
        assert Instruction(Op.HALT).is_control

    def test_writes_reg(self):
        assert Instruction(Op.ADD, rd=1, rs1=2, rs2=3).writes_reg
        assert Instruction(Op.LOAD, rd=4, rs1=2).writes_reg
        assert not Instruction(Op.ADD, rd=0, rs1=2, rs2=3).writes_reg  # r0 sink
        assert not Instruction(Op.STORE, rs1=2, rs2=3).writes_reg
        assert not Instruction(Op.MEMBAR).writes_reg

    def test_reads_excludes_r0(self):
        assert Instruction(Op.ADD, rd=1, rs1=0, rs2=3).reads == (3,)
        assert Instruction(Op.MOVI, rd=1, imm=9).reads == ()
        assert Instruction(Op.STORE, rs1=2, rs2=3).reads == (2, 3)
        assert Instruction(Op.BEQ, rs1=4, rs2=5).reads == (4, 5)

    def test_register_range_validated(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=32, rs1=1, rs2=2)
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=1, rs1=-1, rs2=2)

    def test_instructions_hashable_and_immutable(self):
        inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        assert hash(inst) == hash(Instruction(Op.ADD, rd=1, rs1=2, rs2=3))
        with pytest.raises(AttributeError):
            inst.rd = 5  # type: ignore[misc]
