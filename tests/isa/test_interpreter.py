"""Tests for the functional reference interpreter."""

from repro.isa import ProgramBuilder, assemble
from repro.isa.interpreter import run


class TestInterpreter:
    def test_countdown_loop(self):
        program = assemble(
            """
            movi r1, 5
            movi r2, 0
            loop:
                add r2, r2, r1
                addi r1, r1, -1
                bne r1, r0, loop
            halt
            """
        )
        result = run(program)
        assert result.halted
        assert result.registers.read(2) == 15  # 5+4+3+2+1
        assert result.registers.read(1) == 0

    def test_memory_round_trip(self):
        program = assemble(
            """
            .word 0x100 7
            movi r1, 0x100
            load r2, [r1]
            addi r2, r2, 1
            store r2, [r1+8]
            load r3, [r1+8]
            halt
            """
        )
        result = run(program)
        assert result.registers.read(3) == 8
        assert result.memory[0x108] == 8
        assert result.load_count == 2 and result.store_count == 1

    def test_atomic_fetch_add(self):
        program = assemble(
            """
            .word 0x40 10
            movi r1, 0x40
            movi r2, 3
            atomic r3, [r1], r2
            halt
            """
        )
        result = run(program)
        assert result.registers.read(3) == 10
        assert result.memory[0x40] == 13

    def test_cas_spinlock_acquires(self):
        """The paper's motivating spin-lock: CAS on a free lock succeeds."""
        program = assemble(
            """
            movi r1, 0x200
            spin:
                cas r2, [r1], r0, 1
                bne r2, r0, spin
            halt
            """
        )
        result = run(program)
        assert result.halted
        assert result.memory[0x200] == 1

    def test_max_instructions_bounds_infinite_loop(self):
        program = assemble("loop:\njump loop\nhalt")
        result = run(program, max_instructions=100)
        assert not result.halted
        assert result.retired == 100

    def test_event_counters(self):
        program = assemble("trap\nmembar\ntrap\nhalt")
        result = run(program)
        assert result.trap_count == 2
        assert result.membar_count == 1

    def test_builder_and_assembler_agree(self):
        text = assemble(
            """
            movi r1, 4
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
            halt
            """
        )
        builder = ProgramBuilder()
        builder.movi(1, 4)
        builder.label("loop")
        builder.addi(1, 1, -1)
        builder.bne(1, 0, "loop")
        builder.halt()
        built = builder.build()
        assert built.instructions == text.instructions
        assert run(built).retired == run(text).retired

    def test_trace_collection(self):
        program = assemble("movi r1, 2\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt")
        result = run(program, collect_trace=True)
        assert result.trace == [0, 1, 2, 1, 2, 3]

    def test_out_of_range_pc_halts(self):
        program = assemble("jump 1\nnop")  # runs off the end
        result = run(program)
        assert result.halted
