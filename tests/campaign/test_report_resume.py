"""Reports and resume: checkpointing through the exec cache.

The tentpole contract under test: a ``--resume`` re-run of a completed
campaign replans the identical job list, serves every outcome from the
checkpoint (zero simulations), and reproduces the text and JSON reports
byte for byte.
"""

import json

import pytest

from repro.campaign.outcome import DETECTED_RECOVERED, Outcome
from repro.campaign.plan import campaign_config, plan_campaign
from repro.campaign.report import render_report, report_payload, write_report
from repro.campaign.resume import OutcomeCache, campaign_cache, campaign_root
from repro.campaign.run import run_campaign
from repro.exec.cache import FreshWriteCache, NullCache

WINDOW = dict(commit_target=120, max_cycles=40_000)


def _outcome(**overrides):
    base = dict(
        classification=DETECTED_RECOVERED,
        victim="vocal",
        target="result",
        bit=17,
        inject_index=3,
        fired=True,
        absorbed=True,
        detected=True,
        cause="fingerprint",
        latency=6,
        aliased=False,
        flushed=False,
        unchecked=False,
        commits=120,
        cycles=900,
        recoveries=1,
        signature_matched=True,
    )
    base.update(overrides)
    return Outcome(**base)


class TestOutcomeCache:
    def test_round_trip(self, tmp_path):
        cache = OutcomeCache(tmp_path)
        job = plan_campaign("compute-kernel", 1, **WINDOW)[0]
        outcome = _outcome()
        cache.put(job, outcome)
        assert OutcomeCache(tmp_path).get(job) == outcome

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = OutcomeCache(tmp_path)
        job = plan_campaign("compute-kernel", 1, **WINDOW)[0]
        cache.put(job, _outcome())
        # Corrupt the stored classification in place.
        record_path = cache.path(job)
        record = json.loads(record_path.read_text())
        record["outcome"]["classification"] = "exploded"
        record_path.write_text(json.dumps(record))
        assert OutcomeCache(tmp_path).get(job) is None
        assert not record_path.exists()  # corrupt records are discarded

    def test_fresh_write_cache_never_reads(self, tmp_path):
        inner = OutcomeCache(tmp_path)
        job = plan_campaign("compute-kernel", 1, **WINDOW)[0]
        fresh = FreshWriteCache(inner)
        fresh.put(job, _outcome())
        # The write went through to the checkpoint...
        assert OutcomeCache(tmp_path).get(job) is not None
        # ...but the fresh run never sees it.
        assert fresh.get(job) is None
        assert fresh.misses >= 1

    def test_campaign_cache_modes(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert isinstance(campaign_cache(False, tmp_path), FreshWriteCache)
        assert isinstance(campaign_cache(True, tmp_path), OutcomeCache)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert isinstance(campaign_cache(True, tmp_path), NullCache)

    def test_campaign_root_is_sharded_from_samples(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert campaign_root() == tmp_path / "campaign"
        assert campaign_root(tmp_path / "elsewhere") == (
            tmp_path / "elsewhere" / "campaign"
        )


class TestResumeContract:
    def test_resume_serves_everything_from_checkpoint(self, tmp_path):
        kwargs = dict(
            seed=0,
            config=campaign_config(),
            workers=1,
            cache_root=tmp_path,
            **WINDOW,
        )
        first = run_campaign("compute-kernel", 6, resume=False, **kwargs)
        assert first.manifest.executed == 6
        assert first.manifest.hits == 0

        resumed = run_campaign("compute-kernel", 6, resume=True, **kwargs)
        assert resumed.manifest.executed == 0
        assert resumed.manifest.hits + resumed.manifest.memo_hits == 6
        assert resumed.outcomes == first.outcomes

        bits = kwargs["config"].redundancy.fingerprint_bits
        assert render_report(
            "compute-kernel", bits, resumed.stats, resumed.crosscheck
        ) == render_report("compute-kernel", bits, first.stats, first.crosscheck)
        assert report_payload(
            "compute-kernel", bits, 0, resumed.stats, resumed.crosscheck,
            resumed.outcomes,
        ) == report_payload(
            "compute-kernel", bits, 0, first.stats, first.crosscheck,
            first.outcomes,
        )

    def test_fresh_rerun_reexecutes_but_checkpoints(self, tmp_path):
        kwargs = dict(
            seed=0,
            config=campaign_config(),
            workers=1,
            cache_root=tmp_path,
            **WINDOW,
        )
        run_campaign("compute-kernel", 3, resume=False, **kwargs)
        again = run_campaign("compute-kernel", 3, resume=False, **kwargs)
        # Without --resume the checkpoint exists but is never consulted.
        assert again.manifest.executed == 3
        assert again.manifest.hits == 0


class TestReports:
    def test_text_report_names_every_bucket(self):
        outcomes = [_outcome(), _outcome(bit=3, latency=2)]
        from repro.campaign.stats import crosscheck_aliasing, summarize

        stats = summarize(outcomes)
        text = render_report("compute-kernel", 16, stats, crosscheck_aliasing(outcomes, 16))
        for bucket in ("masked", "detected_recovered", "sdc", "timeout"):
            assert bucket in text
        assert "coverage" in text and "aliasing" in text

    def test_json_report_is_canonical(self, tmp_path):
        outcomes = [_outcome()]
        from repro.campaign.stats import crosscheck_aliasing, summarize

        payload = report_payload(
            "compute-kernel", 16, 0, summarize(outcomes),
            crosscheck_aliasing(outcomes, 16), outcomes,
        )
        path = tmp_path / "report.json"
        write_report(path, payload)
        write_again = tmp_path / "again.json"
        write_report(write_again, payload)
        assert path.read_bytes() == write_again.read_bytes()
        decoded = json.loads(path.read_text())
        assert decoded["schema"] == 2
        assert decoded["buckets"]["detected_recovered"] == 1
        assert len(decoded["outcomes"]) == 1
