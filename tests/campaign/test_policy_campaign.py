"""Campaigns under protection policies: refusal, identity, attribution.

A plain ``repro campaign`` coverage number assumes every interval is
compared — the golden signature spans the whole commit window.  Partial
policies break that assumption by construction, so ``run_campaign``
refuses them unless the caller opts into the unchecked-escape
accounting (the frontier sweep does).  These tests pin the refusal, the
full-policy bit-identity with the policy-free campaign, and the
``unchecked`` attribution that separates policy coverage gaps from CRC
aliasing.
"""

import pytest

from repro.campaign.plan import campaign_config
from repro.campaign.run import run_campaign
from repro.sim.config import ProtectionPolicy

WORKLOAD = "compute-kernel"
INJECTIONS = 10


@pytest.mark.parametrize(
    "policy",
    [
        ProtectionPolicy.interval_sampled(0.5),
        ProtectionPolicy.unprotected(),
        ProtectionPolicy.dynamic(),
    ],
)
def test_refuses_partial_policies_by_default(policy):
    with pytest.raises(ValueError, match="partial protection"):
        run_campaign(
            WORKLOAD, 4, config=campaign_config(policy=policy)
        )


def test_full_policy_is_the_policy_free_campaign():
    bare = run_campaign(WORKLOAD, INJECTIONS)
    full = run_campaign(
        WORKLOAD, INJECTIONS, config=campaign_config(policy=ProtectionPolicy.full())
    )
    assert [outcome.classification for outcome in full.outcomes] == [
        outcome.classification for outcome in bare.outcomes
    ]
    assert [outcome.commits for outcome in full.outcomes] == [
        outcome.commits for outcome in bare.outcomes
    ]
    # A full pair checks every interval: no SDC can be a coverage gap.
    assert full.stats.sdc_unchecked == 0
    assert all(not outcome.unchecked for outcome in full.outcomes)


def test_little_mute_campaign_is_not_partial():
    # Heterogeneous but complete coverage: no opt-in needed.
    result = run_campaign(
        WORKLOAD,
        INJECTIONS,
        config=campaign_config(policy=ProtectionPolicy.little_mute(2)),
    )
    assert result.stats.sdc_unchecked == 0


def test_unprotected_attributes_every_sdc_to_the_coverage_gap():
    result = run_campaign(
        WORKLOAD,
        INJECTIONS,
        config=campaign_config(policy=ProtectionPolicy.unprotected()),
        allow_partial=True,
    )
    stats = result.stats
    # Nothing is compared, so nothing is detected...
    if stats.coverage_trials:
        assert stats.coverage == 0.0
    # ...and every silent corruption walked through an unchecked
    # interval — none may be misattributed to CRC aliasing.
    assert stats.sdc_unchecked == stats.buckets["sdc"]
    for outcome in result.outcomes:
        if outcome.classification == "sdc":
            assert outcome.unchecked
