"""Outcome classification: the golden reference and the taxonomy kernel."""

import dataclasses

import pytest

from repro.campaign.outcome import (
    DETECTED_RECOVERED,
    DETECTED_UNRECOVERABLE,
    MASKED,
    SDC,
    TAXONOMY,
    TIMEOUT,
    classify,
    golden_reference,
    run_injection,
)
from repro.campaign.plan import campaign_config, plan_campaign

#: A short commit window keeps each simulated run to a few milliseconds.
WINDOW = dict(commit_target=120, max_cycles=40_000)


def _jobs(injections, bits=16, seed=0):
    return plan_campaign(
        "compute-kernel",
        injections,
        seed=seed,
        config=campaign_config(fingerprint_bits=bits),
        **WINDOW,
    )


class TestClassifyKernel:
    """The pure precedence kernel: exactly one bucket per combination."""

    def test_unfired_is_masked(self):
        assert classify(False, False, 120, 120, True, False) == MASKED

    def test_failed_pair_is_due(self):
        assert classify(True, True, 40, 120, False, True) == DETECTED_UNRECOVERABLE

    def test_short_window_is_timeout(self):
        assert classify(True, False, 80, 120, False, False) == TIMEOUT

    def test_signature_mismatch_is_sdc_even_if_detected(self):
        # Corruption that retired before a later detection still escaped.
        assert classify(True, False, 120, 120, False, True) == SDC

    def test_detected_with_matching_signature_recovered(self):
        assert classify(True, False, 120, 120, True, True) == DETECTED_RECOVERED

    def test_undetected_matching_signature_is_masked(self):
        assert classify(True, False, 120, 120, True, False) == MASKED

    def test_every_combination_lands_in_taxonomy(self):
        for fired in (False, True):
            for failed in (False, True):
                for commits in (40, 120):
                    for matched in (False, True):
                        for detected in (False, True):
                            bucket = classify(
                                fired, failed, commits, 120, matched, detected
                            )
                            assert bucket in TAXONOMY


class TestGoldenReference:
    def test_reference_is_deterministic(self):
        spec = _jobs(1)[0].spec
        config = _jobs(1)[0].config
        first = golden_reference(config, spec)
        second = golden_reference(config, spec)
        assert first == second
        assert first.commits == spec.commit_target

    def test_reference_independent_of_injection_site(self):
        jobs = _jobs(4)
        reference = golden_reference(jobs[0].config, jobs[0].spec)
        other = golden_reference(jobs[0].config, jobs[3].spec)
        assert reference.signature == other.signature

    def test_impossible_window_raises(self):
        job = _jobs(1)[0]
        starved = dataclasses.replace(job.spec, max_cycles=20)
        with pytest.raises(RuntimeError, match="golden run"):
            golden_reference(job.config, starved)


class TestRunInjection:
    def test_detected_fault_restores_golden_stream(self):
        jobs = _jobs(8)
        golden = golden_reference(jobs[0].config, jobs[0].spec)
        outcomes = [run_injection(job.config, job.spec, golden) for job in jobs]
        assert all(outcome.classification in TAXONOMY for outcome in outcomes)
        detected = [
            outcome
            for outcome in outcomes
            if outcome.classification == DETECTED_RECOVERED
        ]
        # At CRC-16 on this window nearly every upset is caught; the
        # tier-1 contract needs at least one to exercise the full path.
        assert detected
        for outcome in detected:
            assert outcome.fired and outcome.detected
            assert outcome.signature_matched
            assert outcome.recoveries >= 1
            assert outcome.cause in (
                "fingerprint", "count", "poison", "timeout", "sync_divergence",
            )
            if outcome.cause in ("fingerprint", "count", "poison"):
                assert outcome.latency is not None and outcome.latency >= 0

    def test_outcome_carries_the_site(self):
        job = _jobs(1)[0]
        golden = golden_reference(job.config, job.spec)
        outcome = run_injection(job.config, job.spec, golden)
        assert outcome.victim == job.spec.victim
        assert outcome.target == job.spec.target
        assert outcome.bit == job.spec.bit
        assert outcome.inject_index == job.spec.inject_index
