"""Monte-Carlo agreement between measured aliasing and the closed form.

Two layers of cross-check against :func:`repro.core.coverage.
aliasing_probability`:

* **Random-stream layer** — the closed form models *random* corruption:
  two independent uniformly random update streams collide through an
  N-bit CRC with probability ``2^-N`` (``2^-(N-1)`` after two-stage
  parity folding).  Feeding the actual :class:`~repro.core.fingerprint.
  FingerprintAccumulator` random streams must reproduce that rate to
  within a two-sided Wilson interval — this is the direct Monte-Carlo
  validation of the closed form at the narrow widths (4/8 bits) where
  collisions are frequent enough to measure.

* **Campaign layer** — a real injection campaign produces *structured*
  corruption (one flipped bit, carry-chain propagation), which a CRC
  detects at least as well as random noise.  The measured campaign
  aliasing must therefore stay statistically at or below the closed-form
  band (the one-sided check :func:`repro.campaign.stats.
  crosscheck_aliasing` encodes), and at CRC-16 a small campaign must
  show no aliasing and no SDC at all.
"""

import random

from repro.campaign.outcome import SDC, TAXONOMY
from repro.campaign.plan import campaign_config, plan_campaign
from repro.campaign.run import run_campaign
from repro.campaign.stats import wilson_interval
from repro.core.coverage import aliasing_probability
from repro.core.fingerprint import fingerprint_words

WINDOW = dict(commit_target=120, max_cycles=40_000)


def _collision_rate(bits: int, two_stage: bool, trials: int, seed: int):
    """Collisions between CRCs of independent random 4-word streams."""
    rng = random.Random(seed)
    collisions = 0
    for _ in range(trials):
        a = [rng.getrandbits(64) for _ in range(4)]
        b = [rng.getrandbits(64) for _ in range(4)]
        if a == b:  # astronomically unlikely; not a CRC collision
            continue
        if fingerprint_words(a, bits=bits, two_stage=two_stage) == fingerprint_words(
            b, bits=bits, two_stage=two_stage
        ):
            collisions += 1
    return collisions, trials


class TestRandomStreamAgreement:
    """Two-sided: measured Wilson interval must contain the closed form."""

    def test_crc4_single_stage(self):
        collisions, trials = _collision_rate(4, False, trials=4_000, seed=2006)
        low, high = wilson_interval(collisions, trials)
        assert low <= aliasing_probability(4, two_stage=False) <= high

    def test_crc4_two_stage(self):
        collisions, trials = _collision_rate(4, True, trials=4_000, seed=2006)
        low, high = wilson_interval(collisions, trials)
        # Folding at most doubles aliasing: the measured rate must sit
        # inside [2^-N, 2^-(N-1)] statistically.
        assert low <= aliasing_probability(4, two_stage=True)
        assert high >= aliasing_probability(4, two_stage=False)

    def test_crc8_single_stage(self):
        collisions, trials = _collision_rate(8, False, trials=20_000, seed=39)
        low, high = wilson_interval(collisions, trials)
        assert low <= aliasing_probability(8, two_stage=False) <= high


class TestCampaignAgreement:
    """One-sided: structured upsets alias at or below the random bound."""

    def test_crc4_campaign_consistent_with_closed_form(self, tmp_path):
        result = run_campaign(
            "compute-kernel",
            48,
            seed=1,
            config=campaign_config(fingerprint_bits=4),
            workers=1,
            cache_root=tmp_path,
            **WINDOW,
        )
        assert all(o.classification in TAXONOMY for o in result.outcomes)
        # Enough faults reached a CRC-decided comparison to measure.
        assert result.crosscheck.trials > 0
        assert result.crosscheck.consistent
        assert result.crosscheck.bound_high == aliasing_probability(4, two_stage=True)

    def test_crc16_campaign_has_no_silent_corruption(self, tmp_path):
        result = run_campaign(
            "compute-kernel",
            16,
            seed=1,
            config=campaign_config(fingerprint_bits=16),
            workers=1,
            cache_root=tmp_path,
            **WINDOW,
        )
        assert result.crosscheck.aliased == 0
        assert result.stats.buckets[SDC] == 0
        assert result.crosscheck.consistent


class TestPlanCoversNarrowWidths:
    def test_narrow_config_round_trips_through_job_keys(self):
        jobs4 = plan_campaign(
            "compute-kernel", 4, config=campaign_config(fingerprint_bits=4), **WINDOW
        )
        jobs16 = plan_campaign(
            "compute-kernel", 4, config=campaign_config(fingerprint_bits=16), **WINDOW
        )
        assert {j.key for j in jobs4}.isdisjoint(j.key for j in jobs16)
