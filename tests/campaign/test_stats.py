"""Campaign statistics: Wilson intervals, rate folding, the aliasing band."""

import pytest

from repro.campaign.outcome import (
    DETECTED_RECOVERED,
    MASKED,
    SDC,
    TAXONOMY,
    Outcome,
)
from repro.campaign.stats import crosscheck_aliasing, summarize, wilson_interval
from repro.core.coverage import aliasing_probability


def _outcome(classification, **overrides):
    base = dict(
        classification=classification,
        victim="vocal",
        target="result",
        bit=0,
        inject_index=0,
        fired=classification != MASKED or overrides.get("fired", False),
        absorbed=True,
        detected=classification == DETECTED_RECOVERED,
        cause="fingerprint" if classification == DETECTED_RECOVERED else None,
        latency=5 if classification == DETECTED_RECOVERED else None,
        aliased=False,
        flushed=False,
        unchecked=False,
        commits=120,
        cycles=1000,
        recoveries=1 if classification == DETECTED_RECOVERED else 0,
        signature_matched=classification not in (SDC,),
    )
    base.update(overrides)
    return Outcome(**base)


class TestWilsonInterval:
    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_contains_the_point_estimate(self):
        for successes, trials in [(0, 10), (5, 10), (10, 10), (3, 1000)]:
            low, high = wilson_interval(successes, trials)
            assert low <= successes / trials <= high
            assert 0.0 <= low <= high <= 1.0

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_never_degenerate_at_the_edges(self):
        # Unlike the normal approximation, the edges stay informative.
        low, high = wilson_interval(0, 20)
        assert low == 0.0 and 0.0 < high < 0.25
        low, high = wilson_interval(20, 20)
        assert 0.75 < low < 1.0 and high == 1.0

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)


class TestSummarize:
    def test_buckets_cover_the_taxonomy(self):
        stats = summarize([_outcome(DETECTED_RECOVERED), _outcome(MASKED, fired=True)])
        assert set(stats.buckets) == set(TAXONOMY)
        assert stats.injections == 2
        assert stats.fired == 2

    def test_coverage_excludes_masked(self):
        outcomes = [
            _outcome(DETECTED_RECOVERED),
            _outcome(DETECTED_RECOVERED),
            _outcome(SDC, aliased=True),
            _outcome(MASKED, fired=True),
        ]
        stats = summarize(outcomes)
        # Masked faults demanded no detection: 2 detected of 3 consequential.
        assert stats.coverage_trials == 3
        assert stats.coverage == pytest.approx(2 / 3)
        assert stats.sdc_rate == pytest.approx(1 / 4)
        low, high = stats.coverage_interval
        assert low <= stats.coverage <= high

    def test_latency_and_causes_from_detected_only(self):
        outcomes = [
            _outcome(DETECTED_RECOVERED, latency=4),
            _outcome(DETECTED_RECOVERED, latency=10, cause="count"),
            _outcome(MASKED, fired=True),
        ]
        stats = summarize(outcomes)
        assert stats.latency_mean == pytest.approx(7.0)
        assert stats.latency_max == 10
        assert stats.causes == {"count": 1, "fingerprint": 1}

    def test_empty_campaign_degenerates_cleanly(self):
        stats = summarize([])
        assert stats.coverage == 0.0
        assert stats.latency_mean is None


class TestAliasingCrossCheck:
    def test_trials_are_crc_decided_only(self):
        outcomes = [
            _outcome(DETECTED_RECOVERED),  # fingerprint-caught: a trial
            _outcome(DETECTED_RECOVERED, cause="count"),  # count: not a trial
            _outcome(SDC, aliased=True),  # aliased: a trial
            _outcome(MASKED, fired=True),  # never compared: not a trial
        ]
        check = crosscheck_aliasing(outcomes, bits=4)
        assert check.trials == 2
        assert check.aliased == 1
        assert check.measured == pytest.approx(0.5)

    def test_band_matches_the_closed_form(self):
        check = crosscheck_aliasing([], bits=8)
        assert check.bound_low == aliasing_probability(8, two_stage=False)
        assert check.bound_high == aliasing_probability(8, two_stage=True)
        assert check.bound_high == 2 * check.bound_low

    def test_consistency_is_one_sided(self):
        # Measuring *less* aliasing than the random-corruption bound is
        # consistent (structured upsets alias less); measuring
        # statistically more is not.
        none_aliased = [_outcome(DETECTED_RECOVERED) for _ in range(50)]
        assert crosscheck_aliasing(none_aliased, bits=4).consistent
        mostly_aliased = [
            _outcome(SDC, aliased=True) for _ in range(40)
        ] + [_outcome(DETECTED_RECOVERED) for _ in range(10)]
        assert not crosscheck_aliasing(mostly_aliased, bits=4).consistent
