"""Campaign planning: determinism, stratification, content-hash keys."""

from collections import Counter

import pytest

from repro.campaign.plan import (
    InjectionJob,
    InjectionSpec,
    available_targets,
    campaign_config,
    plan_campaign,
)
from repro.exec.jobs import resolve_workload


class TestSpecValidation:
    def test_bad_victim_rejected(self):
        with pytest.raises(ValueError, match="victim"):
            InjectionSpec("compute-kernel", 0, "bystander", "result", 0, 0)

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            InjectionSpec("compute-kernel", 0, "vocal", "flags", 0, 0)

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError, match="bit"):
            InjectionSpec("compute-kernel", 0, "vocal", "result", 64, 0)


class TestPlanDeterminism:
    def test_identical_inputs_identical_keys(self):
        first = plan_campaign("compute-kernel", 24, seed=3)
        second = plan_campaign("compute-kernel", 24, seed=3)
        assert [job.key for job in first] == [job.key for job in second]
        assert [job.spec for job in first] == [job.spec for job in second]

    def test_seed_changes_every_drawn_site(self):
        first = plan_campaign("compute-kernel", 24, seed=0)
        second = plan_campaign("compute-kernel", 24, seed=1)
        assert {job.key for job in first}.isdisjoint(job.key for job in second)

    def test_key_covers_spec_and_config(self):
        job = plan_campaign("compute-kernel", 1)[0]
        other_spec = InjectionJob(
            config=job.config,
            spec=InjectionSpec(
                job.spec.workload_name,
                job.spec.seed,
                job.spec.victim,
                job.spec.target,
                bit=(job.spec.bit + 1) % 64,
                inject_index=job.spec.inject_index,
            ),
        )
        other_config = InjectionJob(
            config=campaign_config(fingerprint_bits=4), spec=job.spec
        )
        assert len({job.key, other_spec.key, other_config.key}) == 3


class TestStratification:
    def test_strata_filled_round_robin(self):
        jobs = plan_campaign("compute-kernel", 30, seed=0)
        strata = Counter((job.spec.victim, job.spec.target) for job in jobs)
        counts = strata.values()
        assert max(counts) - min(counts) <= 1
        assert {victim for victim, _ in strata} == {"vocal", "mute"}

    def test_bits_rotate_through_octets(self):
        jobs = plan_campaign("compute-kernel", 64, seed=0)
        vocal_result_bits = [
            job.spec.bit
            for job in jobs
            if job.spec.victim == "vocal" and job.spec.target == "result"
        ]
        octets = {bit // 8 for bit in vocal_result_bits}
        assert len(octets) >= len(vocal_result_bits) // 2

    def test_targets_limited_to_workload_mix(self):
        config = campaign_config()
        targets = available_targets(resolve_workload("compute-kernel"), config)
        assert "result" in targets
        jobs = plan_campaign("compute-kernel", 12, seed=0)
        assert {job.spec.target for job in jobs} <= set(targets)

    def test_memory_workload_exposes_store_faults(self):
        config = campaign_config()
        targets = available_targets(resolve_workload("stream"), config)
        assert "store_addr" in targets

    def test_rejects_empty_campaign(self):
        with pytest.raises(ValueError):
            plan_campaign("compute-kernel", 0)


class TestDescribe:
    def test_describe_names_the_site(self):
        job = plan_campaign("compute-kernel", 1, seed=0)[0]
        text = job.describe()
        assert "compute-kernel" in text
        assert f"bit{job.spec.bit}" in text
