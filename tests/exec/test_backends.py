"""Cache storage backends: interchangeability, atomicity, maintenance.

Every semantic test runs parameterized over both backends — the
acceptance bar is that ``json`` and ``sqlite`` are drop-in replacements
for one another: same keys, same hit behavior, same corruption and
maintenance semantics.  The concurrency tests race real processes, since
atomic-publish claims only mean anything across process boundaries.
"""

import dataclasses
import json
import multiprocessing
import os
import sqlite3
import time

import pytest

from repro.exec.backends import (
    BACKEND_KINDS,
    QUARANTINE_DIR,
    JsonShardBackend,
    SqliteBackend,
    default_backend_kind,
    make_backend,
)
from repro.exec.cache import (
    ResultCache,
    cache_gc,
    cache_stats,
    cache_verify,
    maintenance_stores,
)
from repro.exec.jobs import SampleJob
from repro.sim.config import DEFAULT_CONFIG
from repro.sim.sampling import Sample


def _job(seed: int = 0) -> SampleJob:
    return SampleJob(
        config=DEFAULT_CONFIG.replace(n_logical=2),
        workload_name="ocean",
        seed=seed,
        warmup=80,
        measure=160,
    )


def _sample(n: int = 0) -> Sample:
    return Sample(
        cycles=160 + n,
        user_instructions=300,
        recoveries=1,
        tlb_misses=2,
        sync_requests=3,
        serializing=4,
    )


JOB = _job()
SAMPLE = _sample()


@pytest.fixture(params=BACKEND_KINDS)
def backend_kind(request):
    return request.param


class TestSelection:
    def test_default_is_json(self):
        assert default_backend_kind({}) == "json"

    def test_env_selects(self):
        assert default_backend_kind({"REPRO_CACHE_BACKEND": "sqlite"}) == "sqlite"
        assert default_backend_kind({"REPRO_CACHE_BACKEND": " JSON "}) == "json"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="REPRO_CACHE_BACKEND"):
            default_backend_kind({"REPRO_CACHE_BACKEND": "mongodb"})
        with pytest.raises(ValueError, match="unknown cache backend"):
            make_backend("mongodb", "/tmp/x")

    def test_cache_resolves_backend_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        cache = ResultCache(tmp_path)
        assert isinstance(cache.backend, SqliteBackend)
        monkeypatch.delenv("REPRO_CACHE_BACKEND")
        assert isinstance(ResultCache(tmp_path).backend, JsonShardBackend)


class TestSemantics:
    """Identical observable behavior on both backends."""

    def test_round_trip(self, tmp_path, backend_kind):
        cache = ResultCache(tmp_path, backend=backend_kind)
        assert cache.get(JOB) is None
        cache.put(JOB, SAMPLE)
        assert cache.get(JOB) == SAMPLE
        assert len(cache) == 1

    def test_survives_across_instances(self, tmp_path, backend_kind):
        ResultCache(tmp_path, backend=backend_kind).put(JOB, SAMPLE)
        assert ResultCache(tmp_path, backend=backend_kind).get(JOB) == SAMPLE

    def test_same_keys_both_backends(self, tmp_path):
        """The record content is backend-independent — only storage differs."""
        json_cache = ResultCache(tmp_path / "a", backend="json")
        sqlite_cache = ResultCache(tmp_path / "b", backend="sqlite")
        json_cache.put(JOB, SAMPLE)
        sqlite_cache.put(JOB, SAMPLE)
        assert list(json_cache.backend.keys()) == list(sqlite_cache.backend.keys())
        assert json_cache.backend.read(JOB.key) == sqlite_cache.backend.read(JOB.key)

    def test_overwrite_last_writer_wins(self, tmp_path, backend_kind):
        cache = ResultCache(tmp_path, backend=backend_kind)
        cache.put(JOB, _sample(0))
        cache.put(JOB, _sample(7))
        assert cache.get(JOB) == _sample(7)
        assert len(cache) == 1

    def test_wrong_schema_is_a_miss_and_removed(self, tmp_path, backend_kind):
        cache = ResultCache(tmp_path, backend=backend_kind)
        cache.put(JOB, SAMPLE)
        record = cache.backend.read(JOB.key)
        record["schema"] = -1
        cache.backend.write(JOB.key, record)
        assert cache.get(JOB) is None
        assert cache.backend.read(JOB.key) is None  # dropped

    def test_corrupt_bytes_are_a_miss(self, tmp_path, backend_kind):
        cache = ResultCache(tmp_path, backend=backend_kind)
        cache.put(JOB, SAMPLE)
        _corrupt(cache, JOB.key)
        assert cache.get(JOB) is None
        cache.put(JOB, SAMPLE)
        assert cache.get(JOB) == SAMPLE


def _corrupt(cache: ResultCache, key: str) -> None:
    """Damage the stored bytes for ``key`` below the backend API."""
    backend = cache.backend
    if isinstance(backend, JsonShardBackend):
        backend.path(key).write_text("{ not json")
    else:
        with sqlite3.connect(backend.db_path) as conn:
            conn.execute(
                "UPDATE records SET record = '{ not json' WHERE key = ?", (key,)
            )


class TestMaintenance:
    def test_stats(self, tmp_path, backend_kind):
        cache = ResultCache(tmp_path, backend=backend_kind)
        for seed in range(3):
            cache.put(_job(seed), SAMPLE)
        stats = cache_stats(cache, "samples")
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert stats.by_schema == {cache.schema: 3}
        assert "entries : 3" in stats.render()

    def test_gc_by_age(self, tmp_path, backend_kind):
        cache = ResultCache(tmp_path, backend=backend_kind)
        for seed in range(4):
            cache.put(_job(seed), SAMPLE)
        # Nothing is old enough yet.
        assert cache_gc(cache, older_than_s=3600) == (0, 0)
        assert len(cache) == 4
        # Everything is older than "now + an hour ago".
        removed, removed_bytes = cache_gc(
            cache, older_than_s=3600, now=time.time() + 7200
        )
        assert removed == 4 and removed_bytes > 0
        assert len(cache) == 0

    def test_verify_quarantines_corrupt_records(self, tmp_path, backend_kind):
        cache = ResultCache(tmp_path, backend=backend_kind)
        good = [_job(seed) for seed in range(3)]
        for job in good:
            cache.put(job, SAMPLE)
        _corrupt(cache, good[0].key)
        ok, quarantined = cache_verify(cache)
        assert ok == 2
        assert quarantined == [good[0].key]
        # The corrupt record moved out of the store, raw bytes preserved.
        assert cache.backend.read(good[0].key) is None
        parked = cache.root / QUARANTINE_DIR / f"{good[0].key}.json"
        assert parked.exists()
        assert b"not json" in parked.read_bytes()
        # Survivors still decode.
        assert cache.get(good[1]) == SAMPLE

    def test_verify_quarantines_undecodable_values(self, tmp_path, backend_kind):
        cache = ResultCache(tmp_path, backend=backend_kind)
        cache.put(JOB, SAMPLE)
        record = cache.backend.read(JOB.key)
        del record["sample"]["cycles"]
        cache.backend.write(JOB.key, record)
        ok, quarantined = cache_verify(cache)
        assert ok == 0 and quarantined == [JOB.key]

    def test_maintenance_stores_cover_samples_and_campaign(
        self, tmp_path, backend_kind
    ):
        stores = maintenance_stores(root=tmp_path, backend=backend_kind)
        labels = [label for label, _ in stores]
        assert labels == ["samples", "campaign"]
        assert stores[1][1].root == tmp_path / "campaign"


# -- concurrent multi-process writers ---------------------------------------


def _writer(root, kind, seed, value_tag, barrier, results):
    cache = ResultCache(root, backend=kind)
    job = _job(seed)
    barrier.wait()  # maximal overlap: both writers release together
    for n in range(20):
        cache.put(job, _sample(value_tag + n))
        got = cache.get(job)
        assert got is not None, "reader observed a half-written record"
    results.put((os.getpid(), job.key))


class TestConcurrentWriters:
    """Two processes racing the same key and distinct keys.

    Atomic-publish semantics: a concurrent reader never sees a torn
    record — every get during the race returns a fully-decoded sample
    (some writer's complete value), and after the dust settles the store
    holds exactly the expected record set.
    """

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_same_key_race(self, tmp_path, kind):
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        results = context.Queue()
        workers = [
            context.Process(
                target=_writer, args=(tmp_path, kind, 0, tag, barrier, results)
            )
            for tag in (0, 1000)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        cache = ResultCache(tmp_path, backend=kind)
        # Last writer won whole-record: the surviving value is one of the
        # two final writes, not an interleaving.
        final = cache.get(_job(0))
        assert final in (_sample(19), _sample(1019))
        assert len(cache) == 1

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_distinct_keys_race(self, tmp_path, kind):
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        results = context.Queue()
        workers = [
            context.Process(
                target=_writer, args=(tmp_path, kind, seed, 0, barrier, results)
            )
            for seed in (1, 2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        cache = ResultCache(tmp_path, backend=kind)
        assert len(cache) == 2
        assert cache.get(_job(1)) == _sample(19)
        assert cache.get(_job(2)) == _sample(19)


class TestSqliteSpecifics:
    def test_wal_mode(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        cache.put(JOB, SAMPLE)
        (mode,) = cache.backend._connection().execute(
            "PRAGMA journal_mode"
        ).fetchone()
        assert mode == "wal"

    def test_single_file_store(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        for seed in range(5):
            cache.put(_job(seed), SAMPLE)
        files = [p.name for p in tmp_path.iterdir() if p.name.startswith("cache.sqlite")]
        assert "cache.sqlite" in files
        assert not list(tmp_path.glob("??/*.json"))

    def test_record_is_debuggable_json(self, tmp_path):
        """SELECTing a row yields the same record dict a JSON shard holds."""
        cache = ResultCache(tmp_path, backend="sqlite")
        cache.put(JOB, SAMPLE)
        with sqlite3.connect(cache.backend.db_path) as conn:
            (text,) = conn.execute(
                "SELECT record FROM records WHERE key = ?", (JOB.key,)
            ).fetchone()
        record = json.loads(text)
        assert record["job"]["workload"] == "ocean"
        assert record["sample"] == dataclasses.asdict(SAMPLE)


class TestLegacyLayoutUnchanged:
    """The JSON backend must keep reading (and writing) the historic bytes."""

    def test_json_path_layout(self, tmp_path):
        cache = ResultCache(tmp_path, backend="json")
        cache.put(JOB, SAMPLE)
        expected = tmp_path / JOB.key[:2] / f"{JOB.key}.json"
        assert expected.exists()
        # Byte format: json.dump(record, sort_keys=True), no indent.
        record = {
            "schema": cache.schema,
            "job": JOB.payload(),
            "sample": dataclasses.asdict(SAMPLE),
        }
        assert expected.read_text() == json.dumps(record, sort_keys=True)

    def test_pre_backend_record_reads_back(self, tmp_path):
        """A record written by hand in the legacy layout is a hit."""
        record = {
            "schema": ResultCache.schema,
            "job": JOB.payload(),
            "sample": dataclasses.asdict(SAMPLE),
        }
        path = tmp_path / JOB.key[:2] / f"{JOB.key}.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(record, sort_keys=True))
        assert ResultCache(tmp_path, backend="json").get(JOB) == SAMPLE
