"""Worker pool: determinism, crash retry, timeouts, drain, serial fallback."""

import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.exec.cache import ResultCache
from repro.exec.jobs import SampleJob, run_job
from repro.exec.pool import (
    ExecutionError,
    ExecutionInterrupted,
    ExecutionPool,
    execute_jobs,
)
from repro.sim.config import DEFAULT_CONFIG, Mode

CONFIG = DEFAULT_CONFIG.replace(n_logical=2)
REUNION = CONFIG.with_redundancy(mode=Mode.REUNION)

JOBS = [
    SampleJob(config, name, seed, warmup=80, measure=160)
    for config in (CONFIG, REUNION)
    for name in ("ocean", "em3d")
    for seed in (0, 1)
]

#: Filesystem flag consumed by :func:`crash_once_run_job`; retry spawns a
#: fresh process, so "crash exactly once" state must live outside memory.
_CRASH_FLAG_ENV = "REPRO_TEST_CRASH_FLAG"


def crash_once_run_job(job: SampleJob):
    flag = Path(os.environ[_CRASH_FLAG_ENV])
    if flag.exists():
        flag.unlink()
        os._exit(3)
    return run_job(job)


def always_raises_run_job(job: SampleJob):
    raise ValueError("simulated model error")


def sleepy_run_job(job: SampleJob):
    time.sleep(30)


def slow_run_job(job: SampleJob):
    time.sleep(0.5)
    return run_job(job)


def signal_self_after_first_run_job(job: SampleJob):
    """Serial-path helper: SIGTERM the batch right after the first job."""
    sample = run_job(job)
    if job.seed == 0:
        os.kill(os.getpid(), signal.SIGTERM)
    return sample


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial, serial_manifest = execute_jobs(JOBS, workers=1)
        parallel, parallel_manifest = execute_jobs(JOBS, workers=4)
        assert serial == parallel  # full Sample field equality, every job
        assert serial_manifest.executed == parallel_manifest.executed == len(JOBS)

    def test_duplicate_jobs_run_once(self):
        results, manifest = execute_jobs([JOBS[0], JOBS[0], JOBS[0]], workers=2)
        assert manifest.total == 1 and manifest.executed == 1
        assert len(results) == 1


class TestCacheIntegration:
    def test_parallel_fills_cache_then_serves_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first, manifest = execute_jobs(JOBS, workers=4, cache=cache)
        assert manifest.executed == len(JOBS) and manifest.hits == 0
        again, warm = execute_jobs(JOBS, workers=4, cache=cache)
        assert warm.hits == len(JOBS) and warm.executed == 0
        assert warm.hit_rate == 1.0
        assert again == first


class TestFailureHandling:
    def test_worker_crash_is_retried_once(self, tmp_path, monkeypatch):
        flag = tmp_path / "crash-once"
        flag.touch()
        monkeypatch.setenv(_CRASH_FLAG_ENV, str(flag))
        pool = ExecutionPool(workers=2, run_job=crash_once_run_job)
        results, manifest = pool.run(JOBS[:1])
        assert manifest.retries == 1
        assert manifest.executed == 1 and not manifest.failures
        assert results == {JOBS[0].key: run_job(JOBS[0])}

    def test_persistent_failure_raises_after_retries(self):
        pool = ExecutionPool(workers=2, retries=1, run_job=always_raises_run_job)
        with pytest.raises(ExecutionError) as excinfo:
            pool.run(JOBS[:1])
        manifest = excinfo.value.manifest
        assert manifest.retries == 1
        assert len(manifest.failures) == 1
        assert "simulated model error" in manifest.failures[0]

    def test_timeout_kills_and_reports(self):
        pool = ExecutionPool(workers=2, timeout=0.2, retries=0, run_job=sleepy_run_job)
        start = time.monotonic()
        with pytest.raises(ExecutionError) as excinfo:
            pool.run(JOBS[:1])
        assert time.monotonic() - start < 10  # killed, not awaited
        assert "timeout" in excinfo.value.failures[0]

    def test_serial_fallback_propagates_exceptions(self):
        pool = ExecutionPool(workers=1, run_job=always_raises_run_job)
        with pytest.raises(ValueError, match="simulated model error"):
            pool.run(JOBS[:1])


class TestSignalDrain:
    """SIGTERM/SIGINT drain the batch instead of killing it mid-write."""

    def test_serial_drain_keeps_completed_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        batch = [JOBS[0], JOBS[1], JOBS[2]]  # seeds 0, 1, 0 -> 3 unique keys
        pool = ExecutionPool(workers=1, run_job=signal_self_after_first_run_job)
        with pytest.raises(ExecutionInterrupted) as excinfo:
            pool.run(batch, cache=cache)
        assert excinfo.value.signum == signal.SIGTERM
        assert excinfo.value.remaining == 2
        assert "SIGTERM" in excinfo.value.failures[0]
        manifest = excinfo.value.manifest
        assert manifest.executed == 1
        # The completed job's result was cached before the drain returned.
        assert cache.get(batch[0]) == run_job(batch[0])
        assert len(cache) == 1

    def test_parallel_drain_finishes_in_flight_then_stops(self, tmp_path):
        cache = ResultCache(tmp_path)
        batch = JOBS[:6]
        pool = ExecutionPool(workers=2, run_job=slow_run_job)
        timer = threading.Timer(
            0.2, lambda: os.kill(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            with pytest.raises(ExecutionInterrupted) as excinfo:
                pool.run(batch, cache=cache)
        finally:
            timer.cancel()
        manifest = excinfo.value.manifest
        # The first wave (2 workers) was in flight when the signal landed:
        # it completed and flushed; nothing new launched afterwards.
        assert manifest.executed == 2
        assert excinfo.value.remaining == 4
        assert len(cache) == manifest.executed
        assert cache.get(batch[0]) == run_job(batch[0])
        # No orphaned workers: every process was joined during the drain.
        assert multiprocessing.active_children() == []

    def test_second_signal_cancels_in_flight_workers(self):
        pool = ExecutionPool(workers=2, run_job=sleepy_run_job)
        timers = [
            threading.Timer(delay, lambda: os.kill(os.getpid(), signal.SIGTERM))
            for delay in (0.2, 0.5)
        ]
        for timer in timers:
            timer.start()
        start = time.monotonic()
        try:
            with pytest.raises(ExecutionInterrupted) as excinfo:
                pool.run(JOBS[:4])
        finally:
            for timer in timers:
                timer.cancel()
        assert time.monotonic() - start < 10  # terminated, not awaited
        assert excinfo.value.remaining == 4  # nothing completed
        assert multiprocessing.active_children() == []

    def test_handlers_restored_after_batch(self):
        before = signal.getsignal(signal.SIGTERM)
        execute_jobs(JOBS[:1], workers=2)
        assert signal.getsignal(signal.SIGTERM) is before
