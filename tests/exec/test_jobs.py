"""Job descriptors: key stability and sensitivity."""

import pytest

from repro.exec.jobs import SCHEMA_VERSION, SampleJob, resolve_workload, run_job
from repro.sim.config import DEFAULT_CONFIG, Mode
from repro.sim.options import SimOptions

CONFIG = DEFAULT_CONFIG.replace(n_logical=2)


def job(**overrides) -> SampleJob:
    fields = dict(
        config=CONFIG, workload_name="ocean", seed=0, warmup=80, measure=160
    )
    fields.update(overrides)
    return SampleJob(**fields)


class TestKey:
    def test_stable_and_hex(self):
        a, b = job(), job()
        assert a.key == b.key
        assert len(a.key) == 64
        int(a.key, 16)  # valid hex

    def test_sensitive_to_every_field(self):
        base = job().key
        assert job(seed=1).key != base
        assert job(warmup=81).key != base
        assert job(measure=161).key != base
        assert job(workload_name="em3d").key != base
        reunion = CONFIG.with_redundancy(mode=Mode.REUNION)
        assert job(config=reunion).key != base

    def test_deep_config_changes_key(self):
        deeper = CONFIG.with_redundancy(comparison_latency=40)
        assert job(config=deeper).key != job().key

    def test_schema_version_in_payload(self):
        assert job().payload()["schema"] == SCHEMA_VERSION

    def test_options_never_change_key(self):
        # Every SimOptions field is result-neutral by contract, so a
        # cache populated with telemetry off (or under the other kernel
        # or execution strategy) serves armed runs.  This also pins the
        # legacy property that pre-options cache keys stay valid: the
        # payload gains no "options" entry at all.
        base = job()
        armed = job(
            options=SimOptions(
                kernel="naive",
                execution="dual",
                trace="full",
                trace_capacity=16,
                max_cycles=777,
                seed=9,
            )
        )
        assert armed.key == base.key
        assert "options" not in armed.payload()
        assert armed.payload() == base.payload()

    def test_describe_names_the_point(self):
        text = job().describe()
        assert "ocean" in text and "seed0" in text and "80+160" in text


class TestResolveWorkload:
    def test_suite_and_micro(self):
        assert resolve_workload("ocean").name == "ocean"
        assert resolve_workload("APACHE").name == "Apache"  # case-insensitive
        assert resolve_workload("pointer-chase").name == "pointer-chase"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_workload("nope")


class TestRunJob:
    def test_matches_direct_run_sample(self):
        from repro.sim.sampling import run_sample
        from repro.workloads import by_name

        direct = run_sample(CONFIG, by_name("ocean"), 80, 160, seed=0)
        assert run_job(job()) == direct

    def test_telemetry_armed_job_matches_disarmed(self):
        # The bit-identity contract, observed through the job layer.
        armed = job(options=SimOptions(trace="events"))
        assert run_job(armed) == run_job(job())
