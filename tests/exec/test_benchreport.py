"""Bench report serialization, regression checks, kernel comparison."""

import pytest

from repro.exec.benchreport import (
    BENCH_SCHEMA,
    BenchReport,
    KernelComparison,
    PhaseResult,
    check_regression,
    run_bench,
    run_kernel_comparison,
)
from repro.harness import QUICK


def make_report(cps=5000.0, identical=True) -> BenchReport:
    return BenchReport(
        date="2026-08-06",
        scale="quick",
        jobs=2,
        phases=[
            PhaseResult(
                name="fig5", wall_s=10.0, cycles=50_000, samples=11,
                cycles_per_s=cps,
            )
        ],
        kernel_comparison=[
            KernelComparison(
                name="mem-chase/reunion",
                naive_wall_s=1.0,
                event_wall_s=0.2,
                speedup=5.0,
                cycles=3_700,
                identical=identical,
            )
        ],
    )


class TestSerialization:
    def test_round_trip(self):
        report = make_report()
        assert BenchReport.from_dict(report.to_dict()) == report

    def test_write_and_load(self, tmp_path):
        report = make_report()
        path = report.write(str(tmp_path))
        assert path.endswith("BENCH_2026-08-06.json")
        assert BenchReport.load(path) == report

    def test_schema_stamped(self):
        assert make_report().to_dict()["schema"] == BENCH_SCHEMA

    def test_render_mentions_phases_and_kernels(self):
        text = make_report().render()
        assert "fig5" in text
        assert "mem-chase/reunion" in text
        assert "5.00x" in text


class TestRegressionCheck:
    def test_equal_reports_pass(self):
        assert check_regression(make_report(), make_report()) == []

    def test_small_slowdown_tolerated(self):
        current = make_report(cps=2000.0)  # 2.5x slower: within 3x
        assert check_regression(current, make_report(cps=5000.0)) == []

    def test_large_slowdown_fails(self):
        current = make_report(cps=1000.0)  # 5x slower than baseline
        problems = check_regression(current, make_report(cps=5000.0))
        assert len(problems) == 1
        assert "fig5" in problems[0]

    def test_phase_missing_from_baseline_ignored(self):
        baseline = make_report()
        baseline.phases = []
        assert check_regression(make_report(cps=1.0), baseline) == []

    def test_kernel_disagreement_always_fails(self):
        current = make_report(identical=False)
        problems = check_regression(current, make_report())
        assert any("different Stats" in p for p in problems)


class TestRunBench:
    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            run_bench(scale_name="quick", only=["fig99"])

    def test_kernel_comparison_bit_identical(self):
        comparisons = run_kernel_comparison(QUICK)
        assert comparisons  # at least one memory-bound artifact
        assert all(c.identical for c in comparisons)
        assert all(c.naive_wall_s > 0 and c.event_wall_s > 0 for c in comparisons)
        # The tentpole claim: cycle skipping wins on at least one
        # memory-latency-dominated artifact.
        assert max(c.speedup for c in comparisons) >= 2.0
