"""Runner + exec subsystem: prefetch, persistent keys, plan completeness."""

import pytest

import repro.harness.runs as runs
from repro.exec.cache import ResultCache
from repro.harness import (
    plan_fig5,
    plan_fig6,
    plan_fig7a,
    plan_fig7b,
    plan_sc_comparison,
    plan_table3,
    run_fig5,
    run_fig6,
    run_fig7a,
    run_fig7b,
    run_sc_comparison,
    run_table3,
    scale_by_name,
)
from repro.harness.runs import QUICK, Runner, Scale
from repro.sim.config import DEFAULT_CONFIG, Mode
from repro.workloads import by_name

TINY = Scale(
    "tiny", warmup=80, measure=160, seeds=(0,), config=DEFAULT_CONFIG.replace(n_logical=2)
)
OCEAN = by_name("ocean")
NONRED = TINY.config.with_redundancy(mode=Mode.NONREDUNDANT)
REUNION = TINY.config.with_redundancy(mode=Mode.REUNION)


def fail_run_job(job):  # simulation attempted when it must not be
    raise AssertionError(f"unexpected simulation of {job.describe()}")


class TestScaleLookup:
    def test_by_name(self):
        assert scale_by_name("quick") is QUICK
        assert scale_by_name("QUICK") is QUICK

    def test_unknown(self):
        with pytest.raises(ValueError):
            scale_by_name("bogus")


class TestPersistentRunnerCache:
    def test_sample_round_trips_through_disk(self, tmp_path):
        first = Runner(TINY, cache=ResultCache(tmp_path))
        sample = first.sample(NONRED, OCEAN, 0)
        # A fresh runner (fresh process stand-in) must not re-simulate.
        second = Runner(TINY, cache=ResultCache(tmp_path))
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(runs, "run_job", fail_run_job)
            assert second.sample(NONRED, OCEAN, 0) == sample
        assert second.cache.hits == 1

    def test_scales_never_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        tiny = Runner(TINY, cache=cache)
        longer = Runner(
            Scale("tiny2", warmup=80, measure=320, seeds=(0,), config=TINY.config),
            cache=cache,
        )
        a = tiny.sample(NONRED, OCEAN, 0)
        b = longer.sample(NONRED, OCEAN, 0)
        assert a.cycles == 160 and b.cycles == 320  # distinct cached entries
        assert len(cache) == 2

    def test_no_cache_runner_still_memoizes(self):
        runner = Runner(TINY)
        first = runner.sample(NONRED, OCEAN, 0)
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(runs, "run_job", fail_run_job)
            assert runner.sample(NONRED, OCEAN, 0) is first


class TestPrefetch:
    def test_parallel_prefetch_is_bit_identical_to_serial(self, tmp_path):
        requests = [(NONRED, OCEAN), (REUNION, OCEAN), (REUNION, by_name("em3d"))]
        parallel = Runner(TINY, cache=ResultCache(tmp_path / "p"))
        manifest = parallel.prefetch(requests, jobs=3)
        assert manifest.executed == 3 and manifest.total == 3
        serial = Runner(TINY)
        for config, workload in requests:
            assert serial.sample(config, workload, 0) == parallel.sample(
                config, workload, 0
            )

    def test_prefetch_reports_memo_and_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(TINY, cache=cache)
        runner.prefetch([(NONRED, OCEAN)])
        # Same runner: served from the in-memory memo.
        again = runner.prefetch([(NONRED, OCEAN)])
        assert again.memo_hits == 1 and again.executed == 0
        assert again.hit_rate == 1.0
        # Fresh runner: served from disk.
        fresh = Runner(TINY, cache=ResultCache(tmp_path))
        manifest = fresh.prefetch([(NONRED, OCEAN)])
        assert manifest.hits == 1 and manifest.executed == 0


class TestPlanCompleteness:
    def test_plans_cover_every_sample_their_driver_needs(self):
        """After prefetching a driver's plan, rendering simulates nothing."""
        runner = Runner(TINY)
        plans_and_drivers = [
            (plan_fig5(TINY), lambda: run_fig5(runner=runner)),
            (
                plan_fig6(Mode.STRICT, TINY, latencies=(0, 10)),
                lambda: run_fig6(Mode.STRICT, runner=runner, latencies=(0, 10)),
            ),
            (plan_table3(TINY), lambda: run_table3(runner=runner)),
            (plan_fig7a(TINY), lambda: run_fig7a(runner=runner)),
            (
                plan_fig7b(TINY, latencies=(0, 10)),
                lambda: run_fig7b(runner=runner, latencies=(0, 10)),
            ),
            (plan_sc_comparison(TINY), lambda: run_sc_comparison(runner=runner)),
        ]
        for plan, driver in plans_and_drivers:
            runner.prefetch(plan)
            with pytest.MonkeyPatch.context() as patch:
                patch.setattr(runs, "run_job", fail_run_job)
                assert driver().render()
