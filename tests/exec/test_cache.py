"""Persistent result cache: round-trips, corruption recovery, env config."""

import json

from repro.exec.cache import (
    DEFAULT_CACHE_DIR,
    NullCache,
    ResultCache,
    decode_sample,
    default_cache,
    encode_sample,
)
from repro.exec.jobs import SampleJob
from repro.sim.config import DEFAULT_CONFIG
from repro.sim.sampling import Sample

JOB = SampleJob(
    config=DEFAULT_CONFIG.replace(n_logical=2),
    workload_name="ocean",
    seed=0,
    warmup=80,
    measure=160,
)
SAMPLE = Sample(
    cycles=160,
    user_instructions=300,
    recoveries=1,
    tlb_misses=2,
    sync_requests=3,
    serializing=4,
)


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(JOB) is None
        cache.put(JOB, SAMPLE)
        assert cache.get(JOB) == SAMPLE
        assert cache.misses == 1 and cache.hits == 1
        assert len(cache) == 1

    def test_survives_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(JOB, SAMPLE)
        assert ResultCache(tmp_path).get(JOB) == SAMPLE

    def test_sample_codec_roundtrip(self):
        assert decode_sample(encode_sample(SAMPLE)) == SAMPLE

    def test_record_is_debuggable_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(JOB, SAMPLE)
        record = json.loads(cache.path(JOB).read_text())
        assert record["job"]["workload"] == "ocean"
        assert record["sample"]["user_instructions"] == 300


class TestCorruptionRecovery:
    def test_corrupt_record_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(JOB, SAMPLE)
        cache.path(JOB).write_text("{ not json")
        assert cache.get(JOB) is None
        assert not cache.path(JOB).exists()
        cache.put(JOB, SAMPLE)  # fresh result takes its place
        assert cache.get(JOB) == SAMPLE

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(JOB, SAMPLE)
        record = json.loads(cache.path(JOB).read_text())
        record["schema"] = -1
        cache.path(JOB).write_text(json.dumps(record))
        assert cache.get(JOB) is None

    def test_missing_sample_fields_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(JOB, SAMPLE)
        record = json.loads(cache.path(JOB).read_text())
        del record["sample"]["cycles"]
        cache.path(JOB).write_text(json.dumps(record))
        assert cache.get(JOB) is None


class TestEnvironment:
    def test_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.chdir(tmp_path)
        cache = default_cache()
        assert isinstance(cache, ResultCache)
        assert str(cache.root) == DEFAULT_CACHE_DIR

    def test_cache_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = default_cache()
        cache.put(JOB, SAMPLE)
        assert (tmp_path / "elsewhere").is_dir()
        assert cache.get(JOB) == SAMPLE

    def test_no_cache_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = default_cache()
        assert isinstance(cache, NullCache)
        cache.put(JOB, SAMPLE)
        assert cache.get(JOB) is None
        assert len(cache) == 0
