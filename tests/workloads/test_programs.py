"""Correctness of the synchronization kernels — including under Reunion.

These are the hardest tests in the repository: mutual exclusion, barrier
semantics and message passing must hold across redundant pairs while
mute caches go stale, fingerprints mismatch, and the re-execution
protocol fires.  Any lost update or duplicated critical section is a
correctness bug somewhere in the stack.
"""

import pytest

from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode, PhantomStrength
from repro.workloads.programs import (
    COUNTER_ADDR,
    consumer,
    producer,
    sense_barrier,
    spinlock_increment,
    ticket_lock_increment,
)
from tests.core.helpers import SMALL


def run_system(programs, mode, phantom=PhantomStrength.GLOBAL, max_cycles=2_000_000):
    config = SMALL.replace(n_logical=len(programs)).with_redundancy(
        mode=mode, comparison_latency=10, phantom=phantom
    )
    system = CMPSystem(config, programs)
    system.run_until_idle(max_cycles=max_cycles)
    assert not system.failed
    return system


def counter_value(system):
    """The coherent final value of the shared counter."""
    line_addr = COUNTER_ADDR >> 6
    for core in system.vocal_cores:
        line = core.port.l1.lookup(line_addr)
        if line is not None and line.state >= 2:  # E or M: the owner
            return line.data[(COUNTER_ADDR >> 3) & 7]
    l2 = getattr(system.controller, "cache", None)
    if l2 is not None:
        line = l2.lookup(line_addr)
        if line is not None:
            return line.data[(COUNTER_ADDR >> 3) & 7]
    return system.memory.read_word(COUNTER_ADDR)


class TestSpinlock:
    @pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.STRICT, Mode.REUNION])
    def test_mutual_exclusion(self, mode):
        n, k = 2, 6
        system = run_system(
            [spinlock_increment(i, n, k) for i in range(n)], mode
        )
        assert counter_value(system) == n * k

    def test_mutual_exclusion_under_null_phantom(self):
        """Even with garbage phantom data the lock must never be broken."""
        n, k = 2, 4
        system = run_system(
            [spinlock_increment(i, n, k) for i in range(n)],
            Mode.REUNION,
            phantom=PhantomStrength.NULL,
        )
        assert counter_value(system) == n * k
        assert system.recoveries() > 0  # it was genuinely stressed


class TestTicketLock:
    @pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.REUNION])
    def test_fifo_lock_counts_exactly(self, mode):
        n, k = 2, 5
        system = run_system(
            [ticket_lock_increment(i, n, k) for i in range(n)], mode
        )
        assert counter_value(system) == n * k


class TestBarrier:
    @pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.REUNION])
    def test_all_participants_complete_all_rounds(self, mode):
        n, rounds = 2, 4
        system = run_system([sense_barrier(i, n, rounds) for i in range(n)], mode)
        for core in system.vocal_cores:
            assert core.arf.read(20) == rounds


class TestProducerConsumer:
    @pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.REUNION])
    def test_every_item_delivered_once(self, mode):
        items = 5
        system = run_system([producer(items), consumer(items)], mode)
        received = system.vocal_cores[1].arf.read(20)
        assert received == sum(range(1, items + 1))

    def test_mailbox_under_reunion_mute_agrees(self):
        items = 4
        system = run_system([producer(items), consumer(items)], Mode.REUNION)
        for logical in range(2):
            vocal = system.vocal_cores[logical]
            mute = system.cores[2 + logical]
            assert vocal.arf == mute.arf
