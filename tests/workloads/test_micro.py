"""Tests for the microbenchmark workloads."""

import pytest

from repro.isa.interpreter import run as golden_run
from repro.sim.config import Mode
from repro.sim.sampling import run_sample
from repro.workloads.micro import (
    FalseSharing,
    LockContention,
    PointerChase,
    Stream,
    micro_suite,
)
from tests.core.helpers import SMALL


class TestStructure:
    @pytest.mark.parametrize("workload", micro_suite(), ids=lambda w: w.name)
    def test_programs_run_forever(self, workload):
        program = workload.programs(2, seed=0)[0]
        result = golden_run(program, max_instructions=5_000)
        assert not result.halted

    def test_pointer_chase_visits_all_nodes(self):
        workload = PointerChase(nodes=16, chases_per_iteration=16)
        program = workload.programs(1, seed=0)[0]
        result = golden_run(program, max_instructions=200)
        # The chain is a permutation cycle: 16 chases visit 16 distinct nodes.
        addrs = set()
        addr = program.initial_regs[1]
        for _ in range(16):
            addrs.add(addr)
            addr = program.memory_image[addr]
        assert len(addrs) == 16

    def test_lock_contention_serializes(self):
        program = LockContention(locks=2).programs(2, seed=0)[0]
        serializing = sum(1 for i in program.instructions if i.is_serializing)
        assert serializing == 2  # one atomic per lock per iteration

    def test_false_sharing_cores_use_distinct_words(self):
        programs = FalseSharing(lines=2).programs(4, seed=0)
        first_addrs = []
        for program in programs:
            result = golden_run(program, max_instructions=40)
            stores = [a for a in result.memory]
            first_addrs.append(min(stores))
        assert len(set(first_addrs)) == 4  # each core its own word


class TestBehaviour:
    def _norm(self, workload, mode=Mode.REUNION, **kw):
        base = run_sample(
            SMALL.replace(n_logical=2).with_redundancy(mode=Mode.NONREDUNDANT),
            workload, 500, 1200, 0,
        )
        test = run_sample(
            SMALL.replace(n_logical=2).with_redundancy(
                mode=mode, comparison_latency=10, **kw
            ),
            workload, 500, 1200, 0,
        )
        return base, test

    def test_pointer_chase_is_latency_bound(self):
        base, _ = self._norm(PointerChase(nodes=64))
        # Aggregate IPC across 2 cores stays far below machine width.
        assert base.ipc < 2.0

    def test_stream_outruns_pointer_chase(self):
        """Independent accesses beat a dependent chain (MLP exists)."""
        stream, _ = self._norm(Stream(footprint_bytes=16 * 1024))
        chase, _ = self._norm(PointerChase(nodes=512))
        assert stream.ipc > chase.ipc

    def test_lock_contention_generates_sync_requests(self):
        _, test = self._norm(LockContention())
        assert test.sync_requests > 10

    def test_false_sharing_under_reunion_is_correct(self):
        """Invalidation storms must not break redundant execution."""
        base, test = self._norm(FalseSharing())
        assert test.user_instructions > 0
        # Incoherence may occur; what matters is forward progress.
        assert test.ipc > 0.1 * base.ipc
