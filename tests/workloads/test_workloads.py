"""Tests for the workload suite: determinism, structure, and character."""

import pytest

from repro.isa.interpreter import run as golden_run
from repro.workloads import (
    APACHE,
    Em3d,
    Moldyn,
    Ocean,
    Sparse,
    SyntheticWorkload,
    by_name,
    commercial_suite,
    scientific_suite,
    suite,
)
from repro.workloads.base import hashed_schedule


class TestSuite:
    def test_eleven_workloads(self):
        names = [w.name for w in suite()]
        assert len(names) == 11
        assert names[:2] == ["Apache", "Zeus"]
        assert names[-4:] == ["em3d", "moldyn", "ocean", "sparse"]

    def test_categories(self):
        categories = {w.name: w.category for w in suite()}
        assert categories["Apache"] == "Web"
        assert categories["DB2 OLTP"] == "OLTP"
        assert categories["DB2 DSS Q1"] == "DSS"
        assert categories["ocean"] == "Scientific"

    def test_by_name(self):
        assert by_name("apache").name == "Apache"
        with pytest.raises(KeyError):
            by_name("nonexistent")


class TestDeterminism:
    @pytest.mark.parametrize("workload", suite(), ids=lambda w: w.name)
    def test_programs_deterministic_in_seed(self, workload):
        a = workload.programs(2, seed=3)
        b = workload.programs(2, seed=3)
        for prog_a, prog_b in zip(a, b):
            assert prog_a.instructions == prog_b.instructions
            assert prog_a.memory_image == prog_b.memory_image

    def test_different_seeds_differ(self):
        w = SyntheticWorkload(APACHE)
        a = w.programs(1, seed=0)[0]
        b = w.programs(1, seed=1)[0]
        assert a.instructions != b.instructions

    def test_cores_get_different_programs(self):
        w = SyntheticWorkload(APACHE)
        programs = w.programs(2, seed=0)
        assert programs[0].instructions != programs[1].instructions

    def test_hashed_schedule_pure(self):
        schedule = hashed_schedule(5.0, seed=42)
        fires = [i for i in range(10_000) if schedule(i)]
        assert fires == [i for i in range(10_000) if schedule(i)]
        # Rate within 3x of nominal (5 per 1000).
        assert 15 <= len(fires) <= 150

    def test_zero_rate_schedule_is_none(self):
        assert hashed_schedule(0, seed=1) is None


class TestProgramStructure:
    @pytest.mark.parametrize("workload", suite(), ids=lambda w: w.name)
    def test_programs_run_forever(self, workload):
        """Workload programs are infinite loops (sampling never halts)."""
        program = workload.programs(2, seed=0)[0]
        result = golden_run(program, max_instructions=20_000)
        assert not result.halted
        assert result.retired == 20_000

    @pytest.mark.parametrize("workload", suite(), ids=lambda w: w.name)
    def test_memory_accesses_present(self, workload):
        program = workload.programs(2, seed=0)[0]
        result = golden_run(program, max_instructions=10_000)
        assert result.load_count > 0
        assert result.store_count > 0

    def test_commercial_serializing_rates_exceed_scientific(self):
        """Dynamic serializing rate: commercial >> scientific (Sec. 5.2).

        Scientific kernels only synchronize every few sweeps, so the rate
        must be measured over executed instructions, not static code.
        """

        def serializing_rate(workload):
            program = workload.programs(2, seed=0)[0]
            result = golden_run(program, max_instructions=20_000, collect_trace=True)
            count = sum(
                1
                for pc in result.trace
                if program.instructions[pc].is_serializing
            )
            return count / result.retired

        commercial = [serializing_rate(w) for w in commercial_suite()[:4]]
        scientific = [serializing_rate(w) for w in scientific_suite()]
        assert min(commercial) > max(scientific)

    def test_scientific_kernels_share_data(self):
        """Remote edges / halo rows / shared x: programs of different
        cores must touch overlapping addresses."""
        for workload in (Em3d(), Moldyn(), Ocean(), Sparse()):
            programs = workload.programs(2, seed=0)
            touched = []
            for program in programs:
                result = golden_run(program, max_instructions=30_000)
                touched.append(set(result.memory))
            # Writes from core 0 and core 1 overlap somewhere (halo,
            # shared vector) or core 1 reads what core 0 writes.
            assert touched[0] & touched[1], workload.name

    def test_em3d_remote_fraction_respected(self):
        workload = Em3d(nodes_per_core=32, degree=4, remote_fraction=0.15)
        programs = workload.programs(4, seed=0)
        assert len(programs) == 4

    def test_itlb_schedules_match_profile(self):
        w = SyntheticWorkload(APACHE)
        schedules = w.itlb_schedules(4, seed=0)
        assert len(schedules) == 4
        assert all(s is not None for s in schedules)
        scientific = Ocean().itlb_schedules(4, seed=0)
        assert all(s is None for s in scientific)
