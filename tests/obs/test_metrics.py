"""Unit tests for the per-interval metrics sampler."""

import pytest

from repro.obs.metrics import MetricsSampler


class FakeSystem:
    """The only thing sample() reads from a system."""

    def __init__(self) -> None:
        self.instructions = 0

    def user_instructions(self) -> int:
        return self.instructions


class TestRows:
    def test_first_row_is_the_window_delta(self):
        sampler = MetricsSampler(interval=100, fingerprint_bits=16)
        system = FakeSystem()
        for _ in range(5):
            sampler.observe("fingerprint.compare", 50)
        sampler.observe("sync.request", 60)
        system.instructions = 200
        sampler.sample(system, 100)

        (row,) = sampler.rows
        assert row.cycle == 100 and row.cycles == 100
        assert row.instructions == 200
        assert row.ipc == pytest.approx(2.0)
        assert row.fp_compares == 5
        # Both cores send a fingerprint per comparison: 2 * 16 bits each.
        assert row.fp_bandwidth_bits_per_cycle == pytest.approx(2 * 16 * 5 / 100)
        assert row.sync_per_kcycle == pytest.approx(10.0)
        assert row.recoveries == 0

    def test_second_row_covers_only_its_window(self):
        sampler = MetricsSampler(interval=100)
        system = FakeSystem()
        system.instructions = 100
        sampler.observe("fingerprint.compare", 10)
        sampler.sample(system, 100)
        system.instructions = 150
        sampler.observe("recovery.start", 120, "pair0")
        sampler.sample(system, 200)

        row = sampler.rows[1]
        assert row.instructions == 50
        assert row.fp_compares == 0  # the compare belonged to row 1
        assert row.recoveries == 1

    def test_empty_window_cuts_no_row(self):
        sampler = MetricsSampler(interval=100)
        system = FakeSystem()
        sampler.sample(system, 100)
        sampler.sample(system, 100)
        assert len(sampler.rows) == 1

    def test_boundaries_align_to_interval_multiples(self):
        sampler = MetricsSampler(interval=100)
        system = FakeSystem()
        # A cycle-skip can land the loop past the boundary; the next
        # boundary snaps back to the interval grid so rows from runs
        # with different skip patterns stay comparable.
        sampler.sample(system, 137)
        assert sampler.next_sample_at == 200

    def test_row_to_dict_is_json_ready(self):
        sampler = MetricsSampler(interval=10)
        system = FakeSystem()
        system.instructions = 7
        sampler.sample(system, 10)
        record = sampler.rows[0].to_dict()
        assert record["cycle"] == 10 and record["instructions"] == 7


class TestRecoveryLatencies:
    def test_start_resume_pairing_is_per_source(self):
        sampler = MetricsSampler()
        sampler.observe("recovery.start", 100, "pair0")
        sampler.observe("recovery.start", 110, "pair1")
        sampler.observe("recovery.resume", 160, "pair1")
        sampler.observe("recovery.resume", 180, "pair0")
        assert sorted(sampler.recovery_latencies) == [50, 80]

    def test_resume_without_start_is_ignored(self):
        sampler = MetricsSampler()
        sampler.observe("recovery.resume", 50, "pair0")
        assert sampler.recovery_latencies == []

    def test_latency_histogram_log2_buckets(self):
        sampler = MetricsSampler()
        sampler.recovery_latencies.extend([0, 1, 5, 6, 20, 40])
        assert sampler.latency_histogram() == {
            "0": 1,
            "1-1": 1,
            "4-7": 2,
            "16-31": 1,
            "32-63": 1,
        }

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            MetricsSampler(interval=0)
