"""Unit tests for the JSONL and Chrome trace_event exporters."""

import io
import json

from repro.obs.events import Telemetry
from repro.obs.export import chrome_trace, event_lines, summarize, write_jsonl


class FakeSystem:
    def __init__(self, instructions: int = 0) -> None:
        self.instructions = instructions

    def user_instructions(self) -> int:
        return self.instructions


def _armed() -> Telemetry:
    """A telemetry object with one of everything the exporters handle."""
    telemetry = Telemetry(level="events")
    telemetry.emit("mirror.open", 0, "pair0", start_index=0)
    telemetry.emit("fingerprint.compare", 90, "pair0", index=5, matched=True)
    telemetry.emit("mirror.close", 100, "pair0", cause="serializing")
    telemetry.emit("recovery.start", 120, "pair0", phase=1, cause="mismatch")
    telemetry.emit("phantom.read", 130, "l2", core=1, strength="global")
    telemetry.emit("recovery.resume", 170, "pair0", phase=1)
    telemetry.metrics.sample(FakeSystem(256), 128)
    return telemetry


class TestJsonl:
    def test_lines_cover_events_metrics_and_summary(self):
        telemetry = _armed()
        lines = event_lines(telemetry)
        # 6 events + 1 metrics row + 1 summary trailer.
        assert len(lines) == 8
        kinds = [line["kind"] for line in lines]
        assert kinds[0] == "mirror.open"
        assert "metrics.sample" in kinds
        assert kinds[-1] == "summary"

    def test_summary_trailer_accounts_for_the_run(self):
        telemetry = _armed()
        trailer = event_lines(telemetry)[-1]
        assert trailer["events_emitted"] == 6
        assert trailer["events_dropped"] == 0
        assert trailer["metrics_rows"] == 1
        assert trailer["recovery_latency_histogram"] == {"32-63": 1}

    def test_write_jsonl_emits_parseable_lines(self):
        telemetry = _armed()
        handle = io.StringIO()
        count = write_jsonl(telemetry, handle)
        lines = handle.getvalue().splitlines()
        assert count == len(lines) == 8
        for line in lines:
            json.loads(line)


class TestChromeTrace:
    def test_duration_pairing(self):
        trace = chrome_trace(_armed())["traceEvents"]
        slices = {e["name"]: e for e in trace if e["ph"] == "X"}
        # mirror.open@0 .. mirror.close@100 and recovery.start@120 ..
        # recovery.resume@170 fold into duration slices.
        assert slices["mirror-window"]["ts"] == 0
        assert slices["mirror-window"]["dur"] == 100
        assert slices["recovery"]["ts"] == 120
        assert slices["recovery"]["dur"] == 50
        # Open + close payloads merge into the slice args.
        assert slices["recovery"]["args"]["cause"] == "mismatch"

    def test_unpaired_open_and_close_become_instants(self):
        telemetry = Telemetry(level="events")
        telemetry.emit("recovery.resume", 10, "pair0")  # close without start
        telemetry.emit("mirror.open", 20, "pair0")  # start without close
        instants = {
            e["name"] for e in chrome_trace(telemetry)["traceEvents"] if e["ph"] == "i"
        }
        assert instants == {"recovery.resume", "mirror.open"}

    def test_thread_metadata_per_source(self):
        trace = chrome_trace(_armed(), process_name="unit")["traceEvents"]
        meta = {
            e["args"]["name"]: e["tid"] for e in trace if e["name"] == "thread_name"
        }
        assert set(meta) == {"pair0", "l2"}
        process = next(e for e in trace if e["name"] == "process_name")
        assert process["args"]["name"] == "unit"

    def test_metrics_rows_become_counters(self):
        trace = chrome_trace(_armed())["traceEvents"]
        counters = [e for e in trace if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["ts"] == 128
        assert counters[0]["args"]["ipc"] == 2.0

    def test_whole_trace_is_json_serializable(self):
        json.dumps(chrome_trace(_armed()))


class TestSummarize:
    def test_digest_names_kinds_and_latency(self):
        text = summarize(_armed())
        assert "level=events" in text
        assert "fingerprint.compare" in text
        assert "recovery latency" in text


class TestDirectoryEvents:
    """Satellite of the directory backend: its traffic events reach the
    log at ``full`` level and survive the Chrome-trace export."""

    def _directory_run(self):
        import dataclasses

        from repro.isa import assemble
        from repro.sim.cmp import CMPSystem
        from repro.sim.config import CacheStyle, CoherenceStyle, Mode
        from repro.sim.options import SimOptions
        from tests.core.helpers import SMALL
        from tests.core.test_pair_integration import TestInputIncoherence as Race

        config = SMALL.replace(
            n_logical=2,
            cache_style=CacheStyle.SNOOPY,
            bus=dataclasses.replace(SMALL.bus, coherence=CoherenceStyle.DIRECTORY),
        ).with_redundancy(mode=Mode.REUNION, comparison_latency=10)
        system = CMPSystem(
            config,
            [assemble(Race.READER), assemble(Race.WRITER)],
            options=SimOptions(trace="full"),
        )
        system.run_until_idle(max_cycles=200_000)
        assert not system.failed
        return system.obs

    def test_full_level_logs_directory_kinds(self):
        from repro.obs.events import K_DIR_GETM, K_DIR_GETS, K_DIR_GRANT, K_DIR_INVAL

        counts = self._directory_run().log.counts()
        for kind in (K_DIR_GETS, K_DIR_GETM, K_DIR_GRANT, K_DIR_INVAL):
            assert counts[kind] > 0, f"no {kind} records at full level"
        # Every request arbitrates, so grants bound the request kinds.
        assert counts[K_DIR_GRANT] >= counts[K_DIR_GETS] + counts[K_DIR_GETM]

    def test_directory_events_reach_the_chrome_trace(self):
        telemetry = self._directory_run()
        trace = chrome_trace(telemetry, process_name="dir-test")["traceEvents"]
        instants = {e["name"] for e in trace if e["ph"] == "i"}
        assert "dir.grant" in instants
        assert "dir.gets" in instants
        grant = next(
            e for e in trace if e["ph"] == "i" and e["name"] == "dir.grant"
        )
        assert {"bank", "cls", "line_addr"} <= set(grant["args"])

    def test_events_level_stays_quiet(self):
        """dir.* kinds are full-level diagnostics; the default events
        level must not pay for them."""
        import dataclasses

        from repro.isa import assemble
        from repro.sim.cmp import CMPSystem
        from repro.sim.config import CacheStyle, CoherenceStyle, Mode
        from repro.sim.options import SimOptions
        from tests.core.helpers import SMALL

        config = SMALL.replace(
            n_logical=1,
            cache_style=CacheStyle.SNOOPY,
            bus=dataclasses.replace(SMALL.bus, coherence=CoherenceStyle.DIRECTORY),
        ).with_redundancy(mode=Mode.REUNION)
        system = CMPSystem(
            config,
            [assemble("movi r1, 0x400\nload r2, [r1]\nhalt")],
            options=SimOptions(trace="events"),
        )
        system.run_until_idle(max_cycles=100_000)
        counts = system.obs.log.counts()
        assert not any(kind.startswith("dir.") for kind in counts)
