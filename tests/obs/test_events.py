"""Unit tests for the event log ring buffer and the Telemetry front door."""

import pytest

from repro.obs.events import (
    Event,
    EventLog,
    K_FP_COMPARE,
    K_MIRROR_CLOSE,
    K_MIRROR_MATERIALIZE,
    K_MIRROR_OPEN,
    STRATEGY_KINDS,
    Telemetry,
)


def _event(cycle: int, kind: str = "fingerprint.compare") -> Event:
    return Event(kind, cycle, "pair0", {"index": cycle})


class TestEventLog:
    def test_append_preserves_order(self):
        log = EventLog(capacity=8)
        for cycle in range(5):
            log.append(_event(cycle))
        assert [e.cycle for e in log.snapshot()] == [0, 1, 2, 3, 4]
        assert len(log) == 5
        assert log.emitted == 5
        assert log.dropped == 0

    def test_ring_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        for cycle in range(7):
            log.append(_event(cycle))
        # The tail of history survives; displaced records are counted.
        assert [e.cycle for e in log] == [4, 5, 6]
        assert log.emitted == 7
        assert log.dropped == 4
        assert len(log) == 3

    def test_counts_histogram(self):
        log = EventLog(capacity=8)
        log.append(_event(0, "recovery.start"))
        log.append(_event(1, "recovery.resume"))
        log.append(_event(2, "recovery.start"))
        assert log.counts() == {"recovery.start": 2, "recovery.resume": 1}

    def test_clear_keeps_counters(self):
        log = EventLog(capacity=4)
        log.append(_event(0))
        log.clear()
        assert len(log) == 0
        assert log.emitted == 1  # truncation stays visible

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestEvent:
    def test_to_dict_flattens_args(self):
        event = Event("sync.request", 42, "pair1", {"pc": 0x40, "op": "ATOMIC"})
        assert event.to_dict() == {
            "kind": "sync.request",
            "cycle": 42,
            "source": "pair1",
            "pc": 0x40,
            "op": "ATOMIC",
        }


class TestTelemetryLevels:
    def test_metrics_level_counts_without_buffering(self):
        telemetry = Telemetry(level="metrics")
        assert not telemetry.events_on and not telemetry.full
        telemetry.emit("recovery.start", 10, "pair0")
        telemetry.emit("recovery.resume", 35, "pair0")
        # No records stored, but the metrics side still saw both events.
        assert len(telemetry.log) == 0
        assert telemetry.log.emitted == 0
        assert telemetry.metrics.recovery_latencies == [25]

    def test_events_level_buffers(self):
        telemetry = Telemetry(level="events")
        assert telemetry.events_on and not telemetry.full
        telemetry.emit(K_FP_COMPARE, 8, "pair0", index=1, matched=True)
        assert len(telemetry.log) == 1
        assert telemetry.log.snapshot()[0].args == {"index": 1, "matched": True}

    def test_full_implies_events(self):
        telemetry = Telemetry(level="full")
        assert telemetry.events_on and telemetry.full

    def test_off_and_unknown_levels_rejected(self):
        with pytest.raises(ValueError):
            Telemetry(level="off")
        with pytest.raises(ValueError):
            Telemetry(level="verbose")


class TestCycleStamping:
    def test_explicit_cycle_updates_last_cycle(self):
        telemetry = Telemetry(level="events")
        telemetry.emit(K_FP_COMPARE, 120, "pair0")
        assert telemetry.last_cycle == 120

    def test_none_cycle_stamps_with_last_cycle(self):
        telemetry = Telemetry(level="events")
        telemetry.last_cycle = 77
        telemetry.emit("cache.evict", None, "l2", line_addr=0x400)
        (event,) = telemetry.log.snapshot()
        assert event.cycle == 77
        # A below-timing-layer emission must not advance the clock.
        assert telemetry.last_cycle == 77


class TestStrategyKinds:
    def test_mirror_kinds_are_strategy_only(self):
        assert STRATEGY_KINDS == {
            K_MIRROR_OPEN,
            K_MIRROR_CLOSE,
            K_MIRROR_MATERIALIZE,
        }
