"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_suite_and_micro(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Apache", "DB2 OLTP", "em3d", "pointer-chase"):
            assert name in out


class TestRun:
    def test_run_workload(self, capsys):
        code = main(
            ["run", "ocean", "--warmup", "200", "--measure", "400", "--cpus", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate IPC" in out
        assert "incoherence" in out  # reunion default

    def test_run_nonredundant(self, capsys):
        code = main(
            [
                "run", "ocean", "--mode", "nonredundant",
                "--warmup", "150", "--measure", "300", "--cpus", "2",
            ]
        )
        assert code == 0
        assert "incoherence" not in capsys.readouterr().out

    def test_run_micro_workload(self, capsys):
        code = main(
            [
                "run", "pointer-chase", "--mode", "nonredundant",
                "--warmup", "150", "--measure", "300", "--cpus", "2",
            ]
        )
        assert code == 0

    def test_unknown_workload(self, capsys):
        assert main(["run", "nope", "--cpus", "2"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestAsm:
    def test_assemble_and_run(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text(
            """
            movi r1, 6
            movi r2, 7
            mul r3, r1, r2
            halt
            """
        )
        assert main(["asm", str(source)]) == 0
        out = capsys.readouterr().out
        assert "r3" in out and "42" in out
        assert "recoveries=0" in out

    def test_asm_nonredundant(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("movi r1, 5\nhalt")
        assert main(["asm", str(source), "--mode", "nonredundant"]) == 0
        assert "recoveries" not in capsys.readouterr().out


class TestReproduce:
    def test_unknown_experiment(self, capsys):
        assert main(["reproduce", "--only", "bogus"]) == 2

    def test_sc_experiment_runs(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        # Patch a tiny scale through the environment is not possible;
        # run the cheapest experiment instead.
        code = main(["reproduce", "--only", "sc"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Sequential Consistency" in captured.out
        assert "run manifest" in captured.err

    def test_scale_flag_overrides_env_and_cache_warms(
        self, capsys, monkeypatch, tmp_path
    ):
        # An invalid REPRO_SCALE proves --scale wins over the environment.
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(["reproduce", "--only", "sc", "--scale", "quick", "--jobs", "2"])
        assert code == 0
        first = capsys.readouterr()
        assert "cache hits : 0 (0%)" in first.err
        # Second invocation (fresh Runner, same cache dir): all hits,
        # zero simulations, byte-identical artifact output.
        code = main(["reproduce", "--only", "sc", "--scale", "quick", "--jobs", "2"])
        assert code == 0
        second = capsys.readouterr()
        assert "(100%)" in second.err
        assert "executed   : 0" in second.err
        assert second.out == first.out

    def test_no_cache_flag_skips_persistence(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.chdir(tmp_path)
        code = main(["reproduce", "--only", "sc", "--no-cache"])
        assert code == 0
        assert not (tmp_path / "cache").exists()


class TestTrace:
    """``repro trace``: telemetry-armed replay of one sample."""

    ARGS = [
        "trace", "pointer-chase", "--phantom", "null", "--cpus", "1",
        "--warmup", "1000", "--measure", "3000",
    ]

    @pytest.fixture(autouse=True)
    def _full_protection(self, monkeypatch):
        # The taxonomy below includes mirror windows, which only a
        # full-policy (replay-eligible) pair emits — pin the policy so
        # the REPRO_PROTECTION=little-mute CI leg doesn't retarget it.
        monkeypatch.delenv("REPRO_PROTECTION", raising=False)

    def test_emits_the_event_taxonomy(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.chdir(tmp_path)
        assert main([*self.ARGS, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "telemetry level=events" in out
        assert "fresh run" in out

        jsonl = (tmp_path / "TRACE_pointer-chase.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in jsonl]
        kinds = {record["kind"] for record in records}
        # The acceptance taxonomy: comparisons, recoveries, mirror windows.
        assert "fingerprint.compare" in kinds
        assert any(kind.startswith("recovery.") for kind in kinds)
        assert any(kind.startswith("mirror.") for kind in kinds)
        assert records[-1]["kind"] == "summary"

        trace = json.loads((tmp_path / "TRACE_pointer-chase.trace.json").read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert "process_name" in names
        assert "recovery" in names  # paired start->resume duration slices

    def test_second_run_verifies_against_the_cache(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(self.ARGS) == 0
        assert "fresh run" in capsys.readouterr().out
        assert main(self.ARGS) == 0
        assert "cache-verified" in capsys.readouterr().out

    def test_custom_stem_and_level(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(
            [*self.ARGS, "--no-cache", "--level", "full", "--out", "deep"]
        )
        assert code == 0
        assert "level=full" in capsys.readouterr().out
        assert (tmp_path / "deep.jsonl").exists()
        assert (tmp_path / "deep.trace.json").exists()

    def test_unknown_workload(self, capsys):
        assert main(["trace", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestCampaign:
    """``repro campaign``: statistical fault injection with resume."""

    ARGS = [
        "campaign", "compute-kernel", "--injections", "8",
        "--commits", "120", "--jobs", "1",
    ]

    def test_reports_the_taxonomy_and_resumes_identically(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = tmp_path / "campaign.json"
        assert main([*self.ARGS, "--report", str(report)]) == 0
        first = capsys.readouterr()
        assert "Fault-injection campaign" in first.out
        assert "coverage" in first.out and "aliasing" in first.out
        assert "executed   : 8" in first.err
        first_report = report.read_bytes()

        # Resume: zero simulations, byte-identical reports.
        assert main([*self.ARGS, "--resume", "--report", str(report)]) == 0
        second = capsys.readouterr()
        assert "executed   : 0" in second.err
        assert "(100%)" in second.err
        assert second.out == first.out
        assert report.read_bytes() == first_report

    def test_unknown_workload(self, capsys):
        assert main(["campaign", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
