"""Tests for the directory backend's point-to-point interconnect."""

from repro.memory.directory.entry import DirectoryEntry, HomeDirectory
from repro.memory.directory.interconnect import MUTE, VOCAL, Interconnect, WRRArbiter
from repro.sim.config import BusConfig, CoherenceStyle


class TestWRRArbiter:
    def test_idle_grant_starts_at_arrival(self):
        arb = WRRArbiter({VOCAL: 0, MUTE: 0}, occupancy=2)
        assert arb.grant(VOCAL, 10) == 10
        assert arb.free_at == 12

    def test_weight_zero_is_the_snoopy_recurrence(self):
        """With all weights 0 a grant is exactly
        ``start = max(arrival, free); free = start + occupancy`` — the
        SnoopyBus._arbitrate recurrence the equivalence proof needs."""
        arb = WRRArbiter({VOCAL: 0, MUTE: 0}, occupancy=3)
        free = 0
        for arrival in (0, 0, 1, 9, 9, 100):
            expected = max(arrival, free)
            assert arb.grant(VOCAL, arrival) == expected
            free = expected + 3
            assert arb.free_at == free
        assert arb.deferrals == 0

    def test_exhausted_credits_defer_one_slot(self):
        arb = WRRArbiter({VOCAL: 2, MUTE: 1}, occupancy=4)
        # Two credits pass back-to-back...
        assert arb.grant(VOCAL, 0) == 0
        assert arb.grant(VOCAL, 0) == 4
        # ...the third yields one occupancy slot and opens a new round.
        assert arb.grant(VOCAL, 0) == 8 + 4
        assert arb.deferrals == 1

    def test_fresh_round_refills_both_classes(self):
        arb = WRRArbiter({VOCAL: 1, MUTE: 1}, occupancy=1)
        arb.grant(VOCAL, 0)
        arb.grant(VOCAL, 0)  # deferral -> fresh round, vocal credit spent
        assert arb.deferrals == 1
        # The refilled round still has the mute credit available.
        arb.grant(MUTE, 0)
        assert arb.deferrals == 1

    def test_weighted_classes_share_bandwidth(self):
        """3:1 weights let ~3 vocal grants through per mute deferral-free
        round even under saturation."""
        arb = WRRArbiter({VOCAL: 3, MUTE: 1}, occupancy=1)
        for _ in range(3):
            arb.grant(VOCAL, 0)
        assert arb.deferrals == 0
        arb.grant(VOCAL, 0)
        assert arb.deferrals == 1


DIR_BUS = BusConfig(
    snoop_latency=5,
    transfer_latency=8,
    bus_occupancy=2,
    mshrs=4,
    coherence=CoherenceStyle.DIRECTORY,
    dir_banks=4,
    link_latency=3,
    wrr_vocal_weight=0,
    wrr_mute_weight=0,
)


class TestInterconnect:
    def test_home_bank_is_line_modulo_banks(self):
        fabric = Interconnect(DIR_BUS)
        assert fabric.home_bank(0) == 0
        assert fabric.home_bank(5) == 1
        assert fabric.home_bank(7) == 3

    def test_request_pays_one_link_of_flight(self):
        fabric = Interconnect(DIR_BUS)
        bank, start = fabric.request(5, VOCAL, now=10)
        assert bank == 1
        assert start == 13  # arrival = now + link, bank idle

    def test_banks_arbitrate_independently(self):
        fabric = Interconnect(DIR_BUS)
        _, first = fabric.request(0, VOCAL, now=0)
        _, same_bank = fabric.request(4, VOCAL, now=0)  # also bank 0
        _, other_bank = fabric.request(1, VOCAL, now=0)  # bank 1
        assert same_bank == first + DIR_BUS.bus_occupancy
        assert other_bank == first  # no cross-bank serialization

    def test_respond_hops(self):
        fabric = Interconnect(DIR_BUS)
        assert fabric.respond(100) == 103  # home -> requester
        assert fabric.respond(100, forwarded=True) == 106  # via a holder

    def test_deferrals_sum_across_banks(self):
        config = BusConfig(
            coherence=CoherenceStyle.DIRECTORY,
            dir_banks=2,
            bus_occupancy=1,
            wrr_vocal_weight=1,
            wrr_mute_weight=1,
        )
        fabric = Interconnect(config)
        for _ in range(3):
            fabric.request(0, VOCAL, now=0)
            fabric.request(1, VOCAL, now=0)
        assert fabric.deferrals() == 4  # two per bank


class TestDirectoryEntry:
    def test_owner_requires_modified_and_a_single_bit(self):
        entry = DirectoryEntry()
        assert entry.owner() is None
        entry.add(3)
        assert entry.owner() is None  # still INVALID-stated
        from repro.memory.coherence import MSIState

        entry.state = MSIState.MODIFIED
        assert entry.owner() == 3
        entry.add(5)
        assert entry.owner() is None  # two bits: not a valid owner

    def test_drop_demotes_to_invalid_when_empty(self):
        from repro.memory.coherence import MSIState

        entry = DirectoryEntry()
        entry.state = MSIState.SHARED
        entry.add(1)
        entry.add(2)
        entry.drop(1)
        assert entry.state == MSIState.SHARED
        entry.drop(2)
        assert entry.state == MSIState.INVALID
        assert entry.is_idle()

    def test_holders_ascend(self):
        entry = DirectoryEntry()
        for core in (6, 0, 3):
            entry.add(core)
        assert list(entry.holders()) == [0, 3, 6]
        assert all(entry.holds(core) for core in (0, 3, 6))
        assert not entry.holds(1)

    def test_home_directory_materializes_and_reaps(self):
        home = HomeDirectory(bank_id=0)
        assert home.peek(7) is None
        entry = home.entry(7)
        entry.add(1)
        assert len(home) == 1
        home.drop_if_idle(7)  # non-idle: kept
        assert home.peek(7) is entry
        entry.drop(1)
        home.drop_if_idle(7)
        assert home.peek(7) is None and len(home) == 0
