"""Property-based coherence checking.

Random sequences of memory operations from several vocal cores (plus a
mute) run against the shared controller while a flat reference model
tracks the architecturally-correct value of every word.  Invariants:

* **vocal value coherence** — every vocal load returns exactly the
  reference value (no stale data, ever, regardless of evictions,
  ownership migration, or interleaving);
* **single-writer** — at most one vocal L1 holds a line dirty, and the
  directory names it as owner;
* **sharer accuracy** — any vocal L1 holding a line appears in the
  directory (mute caches never do);
* **synchronizing requests** return the reference value to both cores.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import CoreMemPort, LineState, MainMemory, SharedL2Controller
from repro.sim.config import L1Config, L2Config, PhantomStrength, TLBConfig
from repro.sim.stats import Stats

N_VOCAL = 3
MUTE_ID = N_VOCAL
N_LINES = 12  # line addresses 0..11 -> word addr = line * 64

L1_TINY = L1Config(size_bytes=256, assoc=2, load_to_use=1, mshrs=4)  # 4 lines!
L2_TINY = L2Config(size_bytes=2048, assoc=2, banks=2, hit_latency=3, mshrs=4)
TLB_ANY = TLBConfig(itlb_entries=4, dtlb_entries=4, page_bits=10)


def build():
    stats = Stats()
    memory = MainMemory(latency=10)
    controller = SharedL2Controller(L2_TINY, memory, stats)
    ports = [
        CoreMemPort(i, L1_TINY, TLB_ANY, controller, stats, is_mute=(i == MUTE_ID))
        for i in range(N_VOCAL + 1)
    ]
    return controller, memory, ports


operation = st.tuples(
    st.sampled_from(["load", "store", "rmw", "mute_load", "mute_store", "sync"]),
    st.integers(min_value=0, max_value=N_VOCAL - 1),  # vocal core
    st.integers(min_value=0, max_value=N_LINES - 1),  # line
    st.integers(min_value=0, max_value=7),  # word within line
    st.integers(min_value=1, max_value=1 << 32),  # store value
)


def check_structure(controller, ports):
    """Directory/L1 structural invariants after every operation."""
    for line_addr in range(N_LINES):
        entry = controller.directory.peek(line_addr)
        owner = entry.owner if entry else None
        sharers = entry.sharers if entry else set()
        dirty_holders = []
        for port in ports[:N_VOCAL]:
            line = port.l1.lookup(line_addr)
            if line is None:
                continue
            assert port.core_id in sharers or owner == port.core_id, (
                f"vocal {port.core_id} holds line {line_addr} unknown to directory"
            )
            if line.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                dirty_holders.append(port.core_id)
        assert len(dirty_holders) <= 1, f"line {line_addr}: two exclusive holders"
        if dirty_holders:
            assert owner == dirty_holders[0], (
                f"line {line_addr}: exclusive holder {dirty_holders[0]} is not owner {owner}"
            )
        # Mute must never appear in the directory.
        assert MUTE_ID not in sharers and owner != MUTE_ID


@given(ops=st.lists(operation, min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_vocal_coherence_under_random_traffic(ops):
    controller, memory, ports = build()
    reference: dict[int, int] = {}
    now = 0

    for kind, core, line, word, value in ops:
        now += 30  # let MSHRs and banks drain between operations
        addr = line * 64 + word * 8
        port = ports[core]
        if kind == "load":
            access = port.load(addr, now)
            if access.retry:
                continue
            assert access.value == reference.get(addr, 0), (
                f"vocal load {addr:#x} saw {access.value}, expected "
                f"{reference.get(addr, 0)}"
            )
        elif kind == "store":
            access = port.store(addr, value, now)
            if access.retry:
                continue
            reference[addr] = value
        elif kind == "rmw":
            access = port.rmw_read(addr, now)
            if access.retry:
                continue
            assert access.value == reference.get(addr, 0)
            new_value = (access.value + 1) & ((1 << 64) - 1)
            port.rmw_write(addr, new_value)
            reference[addr] = new_value
        elif kind == "mute_load":
            ports[MUTE_ID].load(addr, now)  # may be stale: no value check
        elif kind == "mute_store":
            ports[MUTE_ID].store(addr, value, now)  # invisible to others
        else:  # sync between vocal `core` and the mute
            reply = controller.synchronizing_access(core, MUTE_ID, line, now)
            assert reply.data[word] == reference.get(line * 64 + word * 8, 0)
            assert ports[core].l1.lookup(line).state == LineState.MODIFIED
            assert ports[MUTE_ID].l1.lookup(line) is not None
        check_structure(controller, ports)

    # Final sweep: every written word is still readable, coherently.
    for addr, expected in reference.items():
        now += 50
        access = ports[0].load(addr, now)
        if access.retry:
            now += 200
            access = ports[0].load(addr, now)
        assert access.value == expected


def build_snoopy():
    from repro.memory.snoopy import SnoopyBus
    from repro.sim.config import BusConfig

    stats = Stats()
    memory = MainMemory(latency=10)
    bus = SnoopyBus(BusConfig(snoop_latency=2, transfer_latency=3, bus_occupancy=1, mshrs=4), memory, stats)
    ports = [
        CoreMemPort(i, L1_TINY, TLB_ANY, bus, stats, is_mute=(i == MUTE_ID))
        for i in range(N_VOCAL + 1)
    ]
    return bus, memory, ports


@given(ops=st.lists(operation, min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_vocal_coherence_on_snoopy_bus(ops):
    """The same linearizability property on the snoopy organization."""
    bus, memory, ports = build_snoopy()
    reference: dict[int, int] = {}
    now = 0
    for kind, core, line, word, value in ops:
        now += 30
        addr = line * 64 + word * 8
        port = ports[core]
        if kind == "load":
            access = port.load(addr, now)
            if not access.retry:
                assert access.value == reference.get(addr, 0)
        elif kind == "store":
            access = port.store(addr, value, now)
            if not access.retry:
                reference[addr] = value
        elif kind == "rmw":
            access = port.rmw_read(addr, now)
            if not access.retry:
                assert access.value == reference.get(addr, 0)
                port.rmw_write(addr, access.value + 1)
                reference[addr] = access.value + 1
        elif kind == "mute_load":
            ports[MUTE_ID].load(addr, now)
        elif kind == "mute_store":
            ports[MUTE_ID].store(addr, value, now)
        else:
            reply = bus.synchronizing_access(core, MUTE_ID, line, now)
            assert reply.data[word] == reference.get(line * 64 + word * 8, 0)
        # Single-writer invariant from cache inspection alone.
        for line_addr in range(N_LINES):
            exclusive = [
                p.core_id
                for p in ports[:N_VOCAL]
                if (l := p.l1.lookup(line_addr)) is not None
                and l.state in (LineState.MODIFIED, LineState.EXCLUSIVE)
            ]
            assert len(exclusive) <= 1, f"line {line_addr}: {exclusive}"


@given(ops=st.lists(operation, min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_mute_traffic_never_leaks(ops):
    """Mute stores must never reach memory, the L2 array, or vocal L1s."""
    controller, memory, ports = build()
    poison = 0xBAD0BAD0BAD0BAD0 & ((1 << 64) - 1)
    now = 0
    for kind, core, line, word, value in ops:
        now += 30
        addr = line * 64 + word * 8
        if kind in ("mute_load", "mute_store"):
            ports[MUTE_ID].store(addr, poison, now)
        elif kind == "load":
            ports[core].load(addr, now)
        elif kind == "store":
            ports[core].store(addr, value & 0xFFFF, now)

    for line in range(N_LINES):
        l2_line = controller.cache.lookup(line)
        if l2_line is not None:
            assert poison not in l2_line.data
        assert poison not in memory.read_line(line)
        for port in ports[:N_VOCAL]:
            l1_line = port.l1.lookup(line)
            if l1_line is not None:
                assert poison not in l1_line.data
