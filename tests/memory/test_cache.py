"""Unit and property tests for the set-associative cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Cache, LineState


def make_cache(sets=4, assoc=2):
    return Cache(size_bytes=sets * assoc * 64, assoc=assoc, line_bytes=64)


LINE = [0] * 8


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(5) is None
        cache.fill(5, LINE, LineState.SHARED)
        line = cache.lookup(5)
        assert line is not None and line.state == LineState.SHARED

    def test_fill_returns_eviction_with_data(self):
        cache = make_cache(sets=1, assoc=2)
        cache.fill(0, [1] * 8, LineState.MODIFIED)
        cache.fill(1, [2] * 8, LineState.SHARED)
        evicted = cache.fill(2, [3] * 8, LineState.SHARED)
        assert evicted is not None
        assert evicted.line_addr == 0 and evicted.dirty and evicted.data == [1] * 8

    def test_lru_order(self):
        cache = make_cache(sets=1, assoc=2)
        cache.fill(0, LINE, LineState.SHARED)
        cache.fill(1, LINE, LineState.SHARED)
        cache.access(0)  # 0 becomes MRU
        evicted = cache.fill(2, LINE, LineState.SHARED)
        assert evicted.line_addr == 1

    def test_invalidate_returns_line(self):
        cache = make_cache()
        cache.fill(7, [9] * 8, LineState.MODIFIED)
        line = cache.invalidate(7)
        assert line is not None and line.dirty
        assert cache.lookup(7) is None
        assert cache.invalidate(7) is None

    def test_downgrade_returns_dirty_data(self):
        cache = make_cache()
        cache.fill(3, [4] * 8, LineState.MODIFIED)
        data = cache.downgrade(3)
        assert data == [4] * 8
        assert cache.lookup(3).state == LineState.SHARED
        assert cache.downgrade(3) is None  # now clean

    def test_word_access(self):
        cache = make_cache()
        cache.fill(0, list(range(8)), LineState.EXCLUSIVE)
        assert cache.read_word(3 * 8) == 3
        cache.write_word(3 * 8, 99)
        assert cache.read_word(3 * 8) == 99
        assert cache.lookup(0).state == LineState.MODIFIED

    def test_fills_do_not_alias_data(self):
        cache = make_cache()
        data = [1] * 8
        cache.fill(0, data, LineState.SHARED)
        data[0] = 777
        assert cache.read_word(0) == 1

    def test_same_set_mapping(self):
        cache = make_cache(sets=4, assoc=2)
        # line addrs 0, 4, 8 all map to set 0
        cache.fill(0, LINE, LineState.SHARED)
        cache.fill(4, LINE, LineState.SHARED)
        evicted = cache.fill(8, LINE, LineState.SHARED)
        assert evicted is not None and evicted.line_addr == 0
        # other sets untouched
        assert cache.lookup(1) is None


class TestProperties:
    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200)
    )
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = make_cache(sets=4, assoc=2)
        for addr in addrs:
            cache.fill(addr, LINE, LineState.SHARED)
        assert len(cache.resident_lines()) <= 8
        per_set: dict[int, int] = {}
        for line_addr in cache.resident_lines():
            per_set[line_addr % 4] = per_set.get(line_addr % 4, 0) + 1
        assert all(count <= 2 for count in per_set.values())

    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100)
    )
    @settings(max_examples=50)
    def test_most_recent_fill_always_resident(self, addrs):
        cache = make_cache(sets=4, assoc=2)
        for addr in addrs:
            cache.fill(addr, LINE, LineState.SHARED)
            assert cache.lookup(addr) is not None
