"""Tests for the per-core memory port (L1 + MSHR + TLB wiring)."""

from repro.memory import CoreMemPort, LineState, MainMemory, SharedL2Controller
from repro.sim.config import L1Config, L2Config, PhantomStrength, TLBConfig
from repro.sim.stats import Stats

L1_TINY = L1Config(size_bytes=512, assoc=2, load_to_use=2, mshrs=2)
L2_SMALL = L2Config(size_bytes=16 * 1024, assoc=8, banks=2, hit_latency=10, mshrs=4)
TLB_SMALL = TLBConfig(itlb_entries=4, dtlb_entries=8, page_bits=10)


def make_ports(n_vocal=1, n_mute=0, phantom=PhantomStrength.GLOBAL):
    stats = Stats()
    memory = MainMemory(latency=50)
    controller = SharedL2Controller(L2_SMALL, memory, stats)
    ports = []
    for core_id in range(n_vocal + n_mute):
        ports.append(
            CoreMemPort(
                core_id,
                L1_TINY,
                TLB_SMALL,
                controller,
                stats,
                is_mute=core_id >= n_vocal,
                phantom=phantom,
            )
        )
    return ports, memory, controller, stats


class TestVocalPort:
    def test_load_miss_then_hit(self):
        (port,), memory, _, stats = make_ports()
        memory.load_image({0x800: 7})
        miss = port.load(0x800, now=0)
        assert miss.value == 7 and miss.miss and miss.done >= 50
        hit = port.load(0x808, now=miss.done)
        assert not hit.miss and hit.done == miss.done + L1_TINY.load_to_use

    def test_mshr_exhaustion_forces_retry(self):
        (port,), _, _, stats = make_ports()
        assert not port.load(0 * 64, now=0).retry
        assert not port.load(1 * 64, now=0).retry
        assert port.load(2 * 64, now=0).retry  # only 2 MSHRs
        assert stats["core0.mshr_stalls"] == 1

    def test_store_silent_when_owned(self):
        (port,), _, _, _ = make_ports()
        port.load(0x100, now=0)  # E state (only core)
        result = port.store(0x100, 5, now=10)
        assert result.done == 11 and not result.miss
        assert port.load(0x100, now=12).value == 5

    def test_store_upgrade_when_shared(self):
        ports, _, controller, _ = make_ports(n_vocal=2)
        ports[0].load(0x100, now=0)
        ports[1].load(0x100, now=0)  # both S now
        result = ports[0].store(0x100, 9, now=10)
        assert result.miss  # upgrade transaction
        assert ports[1].l1.lookup(0x100 // 64) is None  # invalidated

    def test_rmw_acquires_write_permission(self):
        (port,), memory, _, _ = make_ports()
        memory.load_image({0x300: 40})
        access = port.rmw_read(0x300, now=0)
        assert access.value == 40
        port.rmw_write(0x300, 41)
        assert port.load(0x300, now=100).value == 41
        assert port.l1.lookup(0x300 // 64).state == LineState.MODIFIED

    def test_dtlb_interface(self):
        (port,), _, _, _ = make_ports()
        assert not port.dtlb_hit(0x1234)
        port.dtlb_fill(0x1234)
        assert port.dtlb_hit(0x1234)


class TestMutePort:
    def test_mute_load_fills_with_write_permission(self):
        ports, memory, _, _ = make_ports(n_vocal=1, n_mute=1)
        memory.load_image({0x800: 3})
        mute = ports[1]
        access = mute.load(0x800, now=0)
        assert access.value == 3
        assert mute.l1.lookup(0x800 // 64).state == LineState.EXCLUSIVE

    def test_mute_store_writes_locally_only(self):
        ports, memory, controller, _ = make_ports(n_vocal=1, n_mute=1)
        mute = ports[1]
        mute.store(0x800, 42, now=0)
        assert mute.load(0x800, now=50).value == 42
        # Invisible to the rest of the system.
        assert memory.read_word(0x800) == 0
        assert controller.directory.peek(0x800 // 64) is None or (
            1 not in controller.directory.peek(0x800 // 64).sharers
        )

    def test_mute_eviction_data_lost(self):
        ports, _, _, stats = make_ports(n_vocal=1, n_mute=1)
        mute = ports[1]
        mute.store(0x0, 9, now=0)
        # L1 is 512B/2-way = 4 sets; lines 0,4,8 share set 0.  Space the
        # accesses out so each miss completes (only 2 MSHRs).
        assert not mute.load(4 * 64, now=100).retry
        assert not mute.load(8 * 64, now=200).retry  # evicts dirty line 0
        assert stats["l2.mute_evicts_dropped"] >= 1
        # Reading it again gets the coherent (zero) value, not 9.
        assert mute.load(0x0, now=400).value == 0

    def test_null_phantom_garbage_values(self):
        ports, memory, _, _ = make_ports(n_vocal=1, n_mute=1, phantom=PhantomStrength.NULL)
        memory.load_image({0x800: 3})
        access = ports[1].load(0x800, now=0)
        assert access.value != 3  # arbitrary data on every L1 miss

    def test_vocal_and_mute_see_same_value_without_races(self):
        ports, memory, _, _ = make_ports(n_vocal=1, n_mute=1)
        memory.load_image({0x800: 3})
        assert ports[0].load(0x800, now=0).value == ports[1].load(0x800, now=0).value
