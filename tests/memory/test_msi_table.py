"""Tests for the shared MSI protocol table (repro.memory.coherence).

One table drives both private-cache backends — the snoopy bus indexes
it with states derived from snoop responses, the directory backend with
the home entry's recorded state — so these tests pin the table itself,
independent of either backend.
"""

import pytest

from repro.memory.cache import LineState
from repro.memory.coherence import (
    GETM,
    GETS,
    MSI_TRANSITIONS,
    PUTM,
    MSIState,
    Transition,
    transition,
)


class TestTableShape:
    def test_every_entry_is_a_transition(self):
        for (state, request), tr in MSI_TRANSITIONS.items():
            assert state in (MSIState.INVALID, MSIState.SHARED, MSIState.MODIFIED)
            assert request in (GETS, GETM, PUTM)
            assert isinstance(tr, Transition)

    def test_unknown_pair_raises(self):
        with pytest.raises(ValueError):
            transition(MSIState.INVALID, PUTM)
        with pytest.raises(ValueError):
            transition(99, GETS)


class TestGetS:
    def test_invalid_gets_grants_exclusive(self):
        """A sole reader gets E — it may later write without a bus/home
        transaction, so the global state must already be MODIFIED."""
        tr = transition(MSIState.INVALID, GETS)
        assert tr.next_state == MSIState.MODIFIED
        assert tr.grant == LineState.EXCLUSIVE
        assert not tr.fetch_owner and not tr.forward_sharer

    def test_shared_gets_forwards_a_sharer(self):
        tr = transition(MSIState.SHARED, GETS)
        assert tr.next_state == MSIState.SHARED
        assert tr.grant == LineState.SHARED
        assert tr.forward_sharer and not tr.fetch_owner

    def test_modified_gets_fetches_owner_and_writes_back(self):
        tr = transition(MSIState.MODIFIED, GETS)
        assert tr.next_state == MSIState.SHARED
        assert tr.grant == LineState.SHARED
        assert tr.fetch_owner and tr.writeback


class TestGetM:
    def test_invalid_getm_grants_modified_without_snooping(self):
        tr = transition(MSIState.INVALID, GETM)
        assert tr.next_state == MSIState.MODIFIED
        assert tr.grant == LineState.MODIFIED
        assert not (tr.fetch_owner or tr.forward_sharer or tr.invalidate_sharers)

    def test_shared_getm_invalidates_sharers(self):
        tr = transition(MSIState.SHARED, GETM)
        assert tr.next_state == MSIState.MODIFIED
        assert tr.invalidate_sharers and not tr.fetch_owner

    def test_modified_getm_fetches_owner_and_invalidates(self):
        tr = transition(MSIState.MODIFIED, GETM)
        assert tr.next_state == MSIState.MODIFIED
        assert tr.fetch_owner and tr.invalidate_sharers and tr.writeback


class TestPutM:
    def test_owner_writeback_returns_to_invalid(self):
        tr = transition(MSIState.MODIFIED, PUTM)
        assert tr.next_state == MSIState.INVALID
        assert tr.writeback
