"""Tests for the snoopy-bus Reunion implementation (Section 4.1's
Montecito-style design point)."""

import dataclasses

import pytest

from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.memory import Cache, LineState, MainMemory
from repro.memory.snoopy import SnoopyBus
from repro.sim.cmp import CMPSystem
from repro.sim.config import (
    BusConfig,
    CacheStyle,
    CoherenceStyle,
    Mode,
    PhantomStrength,
)
from repro.sim.stats import Stats
from tests.core.helpers import SMALL

BUS = BusConfig(snoop_latency=5, transfer_latency=8, bus_occupancy=2, mshrs=4)


def make_bus(n_vocal=2, n_mute=0):
    stats = Stats()
    memory = MainMemory(latency=40)
    bus = SnoopyBus(BUS, memory, stats)
    l1s = []
    for core_id in range(n_vocal + n_mute):
        l1 = Cache(1024, 2, 64, name=f"l1-{core_id}")
        bus.register_l1(core_id, l1, is_mute=core_id >= n_vocal)
        l1s.append(l1)
    return bus, memory, l1s, stats


class TestBusCoherence:
    def test_read_miss_from_memory_grants_exclusive(self):
        bus, memory, l1s, _ = make_bus()
        memory.load_image({0x1000: 9})
        reply = bus.vocal_read(0, 0x1000 // 64, now=0)
        assert reply.data[0] == 9
        assert l1s[0].lookup(0x1000 // 64).state == LineState.EXCLUSIVE

    def test_cache_to_cache_transfer(self):
        bus, memory, l1s, _ = make_bus()
        bus.vocal_write(0, 7, now=0)
        l1s[0].write_word(7 * 64, 55)
        reply = bus.vocal_read(1, 7, now=10)
        assert reply.data[0] == 55
        # Owner downgraded, memory updated (Illinois-style write-back).
        assert l1s[0].lookup(7).state == LineState.SHARED
        assert memory.read_word(7 * 64) == 55

    def test_bus_write_invalidates_peers(self):
        bus, _, l1s, _ = make_bus(n_vocal=3)
        for core in range(3):
            bus.vocal_read(core, 4, now=core)
        bus.vocal_write(0, 4, now=10)
        assert l1s[0].lookup(4).state == LineState.MODIFIED
        assert l1s[1].lookup(4) is None
        assert l1s[2].lookup(4) is None

    def test_dirty_eviction_writes_back(self):
        bus, memory, l1s, _ = make_bus()
        bus.vocal_write(0, 3, now=0)
        l1s[0].write_word(3 * 64, 77)
        line = l1s[0].invalidate(3)
        bus.vocal_evict(0, 3, line.data, line.dirty)
        assert memory.read_word(3 * 64) == 77

    def test_bus_serializes_transactions(self):
        bus, _, _, _ = make_bus()
        bus.vocal_read(0, 0, now=0)
        first = bus._bus_free
        bus.vocal_read(1, 1, now=0)
        assert bus._bus_free > first


class TestSnoopyMuteSemantics:
    def test_phantom_snoops_peers_without_state_change(self):
        bus, _, l1s, _ = make_bus(n_vocal=1, n_mute=1)
        bus.vocal_write(0, 4, now=0)
        l1s[0].write_word(4 * 64, 31337)
        reply = bus.phantom_read(1, 4, now=5, strength=PhantomStrength.GLOBAL)
        assert reply.data[0] == 31337
        assert l1s[0].lookup(4).state == LineState.MODIFIED  # untouched

    def test_shared_strength_garbage_when_no_cache_has_it(self):
        bus, memory, _, stats = make_bus(n_vocal=1, n_mute=1)
        memory.load_image({0x2000: 5})
        reply = bus.phantom_read(1, 0x2000 // 64, now=0, strength=PhantomStrength.SHARED)
        assert reply.data[0] != 5
        assert stats["bus.phantom_garbage"] == 1

    def test_global_strength_reads_memory(self):
        bus, memory, _, _ = make_bus(n_vocal=1, n_mute=1)
        memory.load_image({0x2000: 5})
        reply = bus.phantom_read(1, 0x2000 // 64, now=0, strength=PhantomStrength.GLOBAL)
        assert reply.data[0] == 5

    def test_sync_request_restores_pair(self):
        bus, _, l1s, _ = make_bus(n_vocal=2, n_mute=1)
        bus.vocal_write(1, 8, now=0)
        l1s[1].write_word(8 * 64, 1)  # competing writer
        l1s[2].fill(8, [0] * 8, LineState.EXCLUSIVE)  # stale mute copy
        reply = bus.synchronizing_access(0, 2, 8, now=10)
        assert reply.data[0] == 1
        assert l1s[0].read_word(8 * 64) == 1
        assert l1s[2].read_word(8 * 64) == 1
        assert l1s[1].lookup(8) is None


# Pin the bus coherence too: these tests are about the snoopy backend
# specifically, so the REPRO_COHERENCE=directory CI leg must not retarget
# them (SMALL honors the env var).
SNOOPY_SMALL = SMALL.replace(
    cache_style=CacheStyle.SNOOPY,
    bus=dataclasses.replace(SMALL.bus, coherence=CoherenceStyle.SNOOPY),
)

LOOPY = """
    movi r1, 25
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


class TestSnoopySystems:
    @pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.STRICT, Mode.REUNION])
    def test_all_modes_produce_golden_results(self, mode):
        config = SNOOPY_SMALL.replace(n_logical=1).with_redundancy(mode=mode)
        system = CMPSystem(config, [assemble(LOOPY)])
        system.run_until_idle(max_cycles=500_000)
        golden = golden_run(assemble(LOOPY)).registers
        for reg in range(5):
            assert system.vocal_cores[0].arf.read(reg) == golden.read(reg)

    def test_reunion_race_resolves_on_snoopy_bus(self):
        from tests.core.test_pair_integration import TestInputIncoherence as Race

        config = SNOOPY_SMALL.replace(n_logical=2).with_redundancy(
            mode=Mode.REUNION, comparison_latency=10
        )
        system = CMPSystem(config, [assemble(Race.READER), assemble(Race.WRITER)])
        system.run_until_idle(max_cycles=200_000)
        assert not system.failed
        reader = system.vocal_cores[0]
        assert reader.arf.read(3) == 77  # the published payload

    def test_null_phantom_forward_progress_on_snoopy_bus(self):
        config = SNOOPY_SMALL.replace(n_logical=1).with_redundancy(
            mode=Mode.REUNION, phantom=PhantomStrength.NULL
        )
        cold = """
            .word 0x800 1
            .word 0x840 2
            movi r1, 0x800
            load r2, [r1]
            load r3, [r1+64]
            add r4, r2, r3
            halt
        """
        system = CMPSystem(config, [assemble(cold)])
        system.run_until_idle(max_cycles=200_000)
        assert not system.failed
        assert system.vocal_cores[0].arf.read(4) == 3
        assert system.recoveries() >= 1

    def test_dual_use_works_on_snoopy_bus(self):
        config = SNOOPY_SMALL.replace(n_logical=1).with_redundancy(mode=Mode.REUNION)
        system = CMPSystem(config, [assemble(LOOPY)])
        system.run(60)
        promoted = system.decouple(0, assemble("movi r5, 123\nhalt"))
        system.run_until_idle(max_cycles=200_000)
        assert promoted.arf.read(5) == 123
        golden = golden_run(assemble(LOOPY)).registers
        assert system.vocal_cores[0].arf.read(2) == golden.read(2)
