"""Coherence-protocol and Reunion-semantics tests for the L2 controller.

These tests script the exact scenarios from the paper: coherent
vocal-to-vocal transfers, mute caches invisible to the directory, the
three phantom strengths, stale mute data (Figure 1's input incoherence),
and the synchronizing request restoring pair coherence.
"""

import pytest

from repro.memory import Cache, LineState, MainMemory, SharedL2Controller
from repro.sim.config import L2Config, PhantomStrength
from repro.sim.stats import Stats

L2_SMALL = L2Config(size_bytes=16 * 1024, assoc=8, banks=2, hit_latency=10, mshrs=4)


def make_system(n_vocal=2, n_mute=0):
    """A controller with n_vocal vocal L1s (ids 0..) and n_mute mute L1s."""
    stats = Stats()
    memory = MainMemory(latency=50)
    controller = SharedL2Controller(L2_SMALL, memory, stats)
    l1s = []
    for core_id in range(n_vocal + n_mute):
        l1 = Cache(1024, 2, 64, name=f"l1-{core_id}")
        controller.register_l1(core_id, l1, is_mute=core_id >= n_vocal)
        l1s.append(l1)
    return controller, memory, l1s, stats


class TestVocalCoherence:
    def test_first_read_grants_exclusive(self):
        controller, memory, l1s, _ = make_system()
        memory.load_image({0x1000: 42})
        reply = controller.vocal_read(0, 0x1000 // 64, now=0)
        assert reply.data[0] == 42
        assert l1s[0].lookup(0x1000 // 64).state == LineState.EXCLUSIVE
        # Off-chip miss: latency includes memory plus L2.
        assert reply.done >= 50

    def test_second_read_downgrades_to_shared(self):
        controller, _, l1s, _ = make_system()
        controller.vocal_read(0, 5, now=0)
        reply = controller.vocal_read(1, 5, now=10)
        assert l1s[0].lookup(5).state == LineState.SHARED
        assert l1s[1].lookup(5).state == LineState.SHARED
        # Second read is an L2 hit: cheap.
        assert reply.done - 10 <= 2 * L2_SMALL.hit_latency

    def test_write_invalidates_sharers(self):
        controller, _, l1s, stats = make_system(n_vocal=3)
        for core in range(3):
            controller.vocal_read(core, 7, now=core)
        controller.vocal_write(0, 7, now=10)
        assert l1s[0].lookup(7).state == LineState.MODIFIED
        assert l1s[1].lookup(7) is None
        assert l1s[2].lookup(7) is None
        assert stats["l2.invalidations"] == 2

    def test_dirty_data_transfers_between_vocals(self):
        controller, _, l1s, _ = make_system()
        controller.vocal_write(0, 3, now=0)
        l1s[0].write_word(3 * 64, 99)  # dirty in core 0
        reply = controller.vocal_read(1, 3, now=5)
        assert reply.data[0] == 99  # fresh value, not stale memory
        assert l1s[0].lookup(3).state == LineState.SHARED

    def test_write_pulls_dirty_copy_from_owner(self):
        controller, _, l1s, _ = make_system()
        controller.vocal_write(0, 3, now=0)
        l1s[0].write_word(3 * 64, 55)
        reply = controller.vocal_write(1, 3, now=5)
        assert reply.data[0] == 55
        assert l1s[0].lookup(3) is None

    def test_upgrade_keeps_l1_data(self):
        controller, _, l1s, _ = make_system()
        controller.vocal_read(0, 9, now=0)
        controller.vocal_read(1, 9, now=1)  # both S
        reply = controller.vocal_write(0, 9, now=5)
        assert l1s[0].lookup(9).state == LineState.MODIFIED
        assert l1s[1].lookup(9) is None
        assert reply.done - 5 <= 2 * L2_SMALL.hit_latency  # no memory trip

    def test_eviction_writes_back_and_updates_directory(self):
        controller, memory, l1s, _ = make_system()
        controller.vocal_write(0, 11, now=0)
        l1s[0].write_word(11 * 64, 77)
        line = l1s[0].invalidate(11)
        controller.vocal_evict(0, 11, line.data, line.dirty)
        # A later read by another core sees the written-back value.
        reply = controller.vocal_read(1, 11, now=100)
        assert reply.data[0] == 77

    def test_duplicate_registration_rejected(self):
        controller, _, _, _ = make_system()
        with pytest.raises(ValueError):
            controller.register_l1(0, Cache(1024, 2), is_mute=False)


class TestMuteSemantics:
    def test_phantom_read_leaves_directory_unchanged(self):
        controller, _, l1s, _ = make_system(n_vocal=1, n_mute=1)
        controller.vocal_write(0, 4, now=0)
        controller.phantom_read(1, 4, now=5, strength=PhantomStrength.GLOBAL)
        entry = controller.directory.peek(4)
        assert entry.owner == 0
        assert entry.sharers == {0}

    def test_global_phantom_reads_owner_fresh_data(self):
        controller, _, l1s, _ = make_system(n_vocal=1, n_mute=1)
        controller.vocal_write(0, 4, now=0)
        l1s[0].write_word(4 * 64, 31337)
        reply = controller.phantom_read(1, 4, now=5, strength=PhantomStrength.GLOBAL)
        assert reply.data[0] == 31337

    def test_global_phantom_goes_off_chip(self):
        controller, memory, _, stats = make_system(n_vocal=1, n_mute=1)
        memory.load_image({0x2000: 5})
        reply = controller.phantom_read(
            1, 0x2000 // 64, now=0, strength=PhantomStrength.GLOBAL
        )
        assert reply.data[0] == 5
        assert reply.done >= 50

    def test_shared_phantom_returns_garbage_on_l2_miss(self):
        controller, memory, _, stats = make_system(n_vocal=1, n_mute=1)
        memory.load_image({0x2000: 5})
        reply = controller.phantom_read(
            1, 0x2000 // 64, now=0, strength=PhantomStrength.SHARED
        )
        assert reply.data[0] != 5  # arbitrary data, not the real value
        assert stats["l2.phantom_garbage"] == 1

    def test_shared_phantom_hits_in_l2(self):
        controller, _, _, _ = make_system(n_vocal=1, n_mute=1)
        controller.vocal_read(0, 6, now=0)  # brings line into L2
        reply = controller.phantom_read(1, 6, now=5, strength=PhantomStrength.SHARED)
        assert reply.data == [0] * 8  # real (zero) data

    def test_null_phantom_always_garbage_and_fast(self):
        controller, _, _, _ = make_system(n_vocal=1, n_mute=1)
        controller.vocal_read(0, 6, now=0)
        reply = controller.phantom_read(1, 6, now=5, strength=PhantomStrength.NULL)
        assert reply.done == 6  # no L2 trip
        garbage = controller.phantom_read(1, 6, now=7, strength=PhantomStrength.NULL)
        assert reply.data == garbage.data  # deterministic garbage

    def test_mute_eviction_dropped(self):
        controller, memory, _, stats = make_system(n_vocal=1, n_mute=1)
        controller.mute_evict(1, 12)
        assert stats["l2.mute_evicts_dropped"] == 1
        assert memory.read_word(12 * 64) == 0


class TestInputIncoherence:
    """The Figure 1 scenario: an intervening store makes a mute stale."""

    def test_stale_mute_copy_after_remote_write(self):
        # Vocal pair (0) and a competing vocal (1); mute is core 2.
        controller, _, l1s, _ = make_system(n_vocal=2, n_mute=1)
        # Both vocal 0 and mute 2 read M[A] = 0.
        vocal_reply = controller.vocal_read(0, 8, now=0)
        phantom_reply = controller.phantom_read(2, 8, now=0, strength=PhantomStrength.GLOBAL)
        l1s[2].fill(8, phantom_reply.data, LineState.EXCLUSIVE)
        assert vocal_reply.data[0] == phantom_reply.data[0] == 0
        # Competing vocal 1 writes M[A] = 1.
        controller.vocal_write(1, 8, now=10)
        l1s[1].write_word(8 * 64, 1)
        # Vocal 0 was invalidated; its next read sees the new value.
        assert l1s[0].lookup(8) is None
        assert controller.vocal_read(0, 8, now=20).data[0] == 1
        # The mute still holds the stale copy: input incoherence.
        assert l1s[2].lookup(8) is not None
        assert l1s[2].read_word(8 * 64) == 0

    def test_synchronizing_request_restores_pair_coherence(self):
        controller, _, l1s, _ = make_system(n_vocal=2, n_mute=1)
        controller.vocal_read(0, 8, now=0)
        l1s[2].fill(8, [0] * 8, LineState.EXCLUSIVE)  # stale mute copy
        controller.vocal_write(1, 8, now=10)
        l1s[1].write_word(8 * 64, 1)
        reply = controller.synchronizing_access(0, 2, 8, now=20)
        # One coherent value delivered to both caches, with write permission.
        assert reply.data[0] == 1
        assert l1s[0].read_word(8 * 64) == 1
        assert l1s[2].read_word(8 * 64) == 1
        assert l1s[0].lookup(8).state == LineState.MODIFIED
        # The writer lost its copy; directory says the vocal owns it.
        assert l1s[1].lookup(8) is None
        assert controller.directory.peek(8).owner == 0

    def test_sync_request_writes_back_vocal_dirty_data(self):
        controller, _, l1s, _ = make_system(n_vocal=1, n_mute=1)
        controller.vocal_write(0, 2, now=0)
        l1s[0].write_word(2 * 64, 123)
        reply = controller.synchronizing_access(0, 1, 2, now=10)
        assert reply.data[0] == 123  # vocal's dirty value is the coherent one

    def test_sync_latency_comparable_to_l2_hit(self):
        controller, _, l1s, _ = make_system(n_vocal=1, n_mute=1)
        controller.vocal_read(0, 2, now=0)
        reply = controller.synchronizing_access(0, 1, 2, now=10)
        assert reply.done - 10 <= 3 * L2_SMALL.hit_latency


class TestBankContention:
    def test_same_bank_requests_serialize(self):
        controller, _, _, _ = make_system()
        controller.vocal_read(0, 0, now=0)
        first_free = controller._bank_free[0]
        controller.vocal_read(1, 2, now=0)  # line 2 -> bank 0 (banks=2)
        assert controller._bank_free[0] > first_free

    def test_different_banks_independent(self):
        controller, _, _, _ = make_system()
        controller.vocal_read(0, 0, now=0)  # bank 0
        controller.vocal_read(1, 1, now=0)  # bank 1
        assert controller._bank_free[0] == controller._bank_free[1]
