"""Tests for MSHRs, TLBs, and main memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MSHRFile, MainMemory, TLB


class TestMSHR:
    def test_capacity_enforced(self):
        mshrs = MSHRFile(2)
        assert mshrs.available(0)
        mshrs.allocate(0, 10)
        mshrs.allocate(0, 20)
        assert not mshrs.available(5)
        assert mshrs.available(10)  # first released
        mshrs.allocate(10, 30)
        assert not mshrs.available(15)

    def test_allocate_without_room_raises(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0, 100)
        with pytest.raises(RuntimeError):
            mshrs.allocate(0, 50)

    def test_next_release(self):
        mshrs = MSHRFile(4)
        assert mshrs.next_release() is None
        mshrs.allocate(0, 30)
        mshrs.allocate(0, 10)
        assert mshrs.next_release() == 10

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    @given(
        releases=st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=50)
    )
    @settings(max_examples=30)
    def test_outstanding_bounded(self, releases):
        mshrs = MSHRFile(4)
        now = 0
        for release in releases:
            if mshrs.available(now):
                mshrs.allocate(now, now + release)
            assert mshrs.outstanding(now) <= 4
            now += 1


class TestTLB:
    def test_miss_then_hit_after_fill(self):
        tlb = TLB(entries=4, assoc=2, page_bits=10)
        assert not tlb.lookup(0x1234)
        tlb.fill(0x1234)
        assert tlb.lookup(0x1234)
        # same page, different offset
        assert tlb.lookup(0x1300)
        # different page
        assert not tlb.lookup(0x1234 + (1 << 10))

    def test_lru_eviction_within_set(self):
        tlb = TLB(entries=2, assoc=2, page_bits=10)  # one set
        tlb.fill(0 << 10)
        tlb.fill(1 << 10)
        tlb.lookup(0 << 10)  # page 0 becomes MRU
        tlb.fill(2 << 10)  # evicts page 1
        assert tlb.lookup(0 << 10)
        assert not tlb.lookup(1 << 10)

    def test_flush(self):
        tlb = TLB(entries=4, assoc=2, page_bits=10)
        tlb.fill(0)
        tlb.flush()
        assert not tlb.lookup(0)

    def test_capacity(self):
        tlb = TLB(entries=8, assoc=2, page_bits=13)
        for page in range(100):
            tlb.fill(page << 13)
        hits = sum(tlb.lookup(page << 13) for page in range(100))
        assert hits <= 8


class TestMainMemory:
    def test_zero_fill(self):
        memory = MainMemory()
        assert memory.read_word(0x4000) == 0
        assert memory.read_line(7) == [0] * 8

    def test_image_applied_lazily(self):
        memory = MainMemory()
        memory.load_image({0x100: 42, 0x108: 7})
        assert memory.read_word(0x100) == 42
        line = memory.read_line(0x100 // 64)
        assert line[0] == 42 and line[1] == 7

    def test_write_read_round_trip(self):
        memory = MainMemory()
        memory.write_word(0x200, 123)
        assert memory.read_word(0x200) == 123

    def test_write_line(self):
        memory = MainMemory()
        memory.write_line(4, list(range(8)))
        assert memory.read_word(4 * 64 + 8) == 1

    def test_line_copy_is_safe(self):
        memory = MainMemory()
        line = memory.read_line(0)
        line[0] = 999
        assert memory.read_word(0) == 0

    def test_unaligned_image_rejected(self):
        memory = MainMemory()
        with pytest.raises(ValueError):
            memory.load_image({3: 1})
