"""Tests for the directory-based coherence backend
(repro.memory.directory) — the many-pair scaling design point."""

import dataclasses

import pytest

from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.memory import Cache, LineState, MainMemory
from repro.memory.coherence import MSIState
from repro.memory.directory import DirectoryBackend
from repro.sim.cmp import CMPSystem
from repro.sim.config import (
    MANYCORE_8,
    BusConfig,
    CacheStyle,
    CoherenceStyle,
    Mode,
    PhantomStrength,
)
from repro.sim.stats import Stats
from tests.core.helpers import SMALL

DIR_BUS = BusConfig(
    snoop_latency=5,
    transfer_latency=8,
    bus_occupancy=2,
    mshrs=4,
    coherence=CoherenceStyle.DIRECTORY,
    dir_banks=2,
    link_latency=3,
)


def make_dir(n_vocal=2, n_mute=0, bus=DIR_BUS):
    stats = Stats()
    memory = MainMemory(latency=40)
    backend = DirectoryBackend(bus, memory, stats)
    l1s = []
    for core_id in range(n_vocal + n_mute):
        l1 = Cache(1024, 2, 64, name=f"l1-{core_id}")
        backend.register_l1(core_id, l1, is_mute=core_id >= n_vocal)
        l1s.append(l1)
    return backend, memory, l1s, stats


def home_entry(backend, line_addr):
    return backend.banks[backend.fabric.home_bank(line_addr)].peek(line_addr)


class TestDirectoryCoherence:
    def test_read_miss_from_memory_grants_exclusive(self):
        backend, memory, l1s, stats = make_dir()
        memory.load_image({0x1000: 9})
        reply = backend.vocal_read(0, 0x1000 // 64, now=0)
        assert reply.data[0] == 9
        assert l1s[0].lookup(0x1000 // 64).state == LineState.EXCLUSIVE
        # Sole reader may silently write an E line, so the home tracks M.
        entry = home_entry(backend, 0x1000 // 64)
        assert entry.state == MSIState.MODIFIED and entry.owner() == 0
        assert stats["dir.gets"] == 1 and stats["dir.memory_reads"] == 1

    def test_forward_from_owner_downgrades_and_cleans_memory(self):
        backend, memory, l1s, stats = make_dir()
        backend.vocal_write(0, 7, now=0)
        l1s[0].write_word(7 * 64, 55)
        reply = backend.vocal_read(1, 7, now=10)
        assert reply.data[0] == 55
        assert l1s[0].lookup(7).state == LineState.SHARED
        assert memory.read_word(7 * 64) == 55  # folded back on the forward
        entry = home_entry(backend, 7)
        assert entry.state == MSIState.SHARED
        assert list(entry.holders()) == [0, 1]
        assert stats["dir.forwards"] == 1

    def test_getm_invalidates_exactly_the_recorded_holders(self):
        backend, _, l1s, stats = make_dir(n_vocal=3)
        for core in range(3):
            backend.vocal_read(core, 4, now=core)
        backend.vocal_write(0, 4, now=10)
        assert l1s[0].lookup(4).state == LineState.MODIFIED
        assert l1s[1].lookup(4) is None
        assert l1s[2].lookup(4) is None
        entry = home_entry(backend, 4)
        assert entry.owner() == 0
        assert stats["dir.invals"] == 2  # cores 1 and 2, never a broadcast

    def test_upgrade_in_place_moves_no_data(self):
        backend, _, l1s, stats = make_dir()
        backend.vocal_read(0, 4, now=0)
        backend.vocal_read(1, 4, now=5)  # both now share
        backend.vocal_write(0, 4, now=10)
        assert stats["dir.upgrades"] == 1
        assert l1s[0].lookup(4).state == LineState.MODIFIED
        assert home_entry(backend, 4).owner() == 0

    def test_clean_eviction_clears_presence(self):
        """A stale presence bit would make the home forward from a cache
        that no longer holds the line — clean evicts must report in."""
        backend, _, l1s, _ = make_dir()
        backend.vocal_read(0, 4, now=0)
        line = l1s[0].invalidate(4)
        backend.vocal_evict(0, 4, line.data, line.dirty)
        assert home_entry(backend, 4) is None  # idle entry reaped
        # A later read must come from memory, not a forward.
        reply = backend.vocal_read(1, 4, now=10)
        assert reply.data is not None

    def test_dirty_eviction_writes_back(self):
        backend, memory, l1s, stats = make_dir()
        backend.vocal_write(0, 3, now=0)
        l1s[0].write_word(3 * 64, 77)
        line = l1s[0].invalidate(3)
        backend.vocal_evict(0, 3, line.data, line.dirty)
        assert memory.read_word(3 * 64) == 77
        assert stats["dir.writebacks"] == 1

    def test_stale_presence_is_a_loud_error(self):
        backend, _, l1s, _ = make_dir()
        backend.vocal_read(0, 4, now=0)
        l1s[0].invalidate(4)  # behind the directory's back
        with pytest.raises(RuntimeError, match="presence stale"):
            backend.vocal_read(1, 4, now=10)

    def test_banks_serialize_their_own_lines_only(self):
        backend, _, _, _ = make_dir()
        backend.vocal_read(0, 0, now=0)  # bank 0
        free_bank0 = backend.fabric.arbiters[0].free_at
        backend.vocal_read(1, 1, now=0)  # bank 1: independent port
        assert backend.fabric.arbiters[0].free_at == free_bank0
        assert backend.fabric.arbiters[1].free_at > 0


class TestDirectoryMuteSemantics:
    def test_phantom_peeks_recorded_holder_without_state_change(self):
        backend, _, l1s, stats = make_dir(n_vocal=1, n_mute=1)
        backend.vocal_write(0, 4, now=0)
        l1s[0].write_word(4 * 64, 31337)
        reply = backend.phantom_read(1, 4, now=5, strength=PhantomStrength.GLOBAL)
        assert reply.data[0] == 31337
        assert l1s[0].lookup(4).state == LineState.MODIFIED  # untouched
        assert home_entry(backend, 4).owner() == 0  # bitmask untouched
        assert stats["dir.phantom_snooped"] == 1

    def test_shared_strength_garbage_on_directory_miss(self):
        backend, memory, _, stats = make_dir(n_vocal=1, n_mute=1)
        memory.load_image({0x2000: 5})
        reply = backend.phantom_read(
            1, 0x2000 // 64, now=0, strength=PhantomStrength.SHARED
        )
        assert reply.data[0] != 5
        assert stats["dir.phantom_garbage"] == 1

    def test_global_strength_reads_memory(self):
        backend, memory, _, stats = make_dir(n_vocal=1, n_mute=1)
        memory.load_image({0x2000: 5})
        reply = backend.phantom_read(
            1, 0x2000 // 64, now=0, strength=PhantomStrength.GLOBAL
        )
        assert reply.data[0] == 5
        assert stats["dir.phantom_memory"] == 1

    def test_null_strength_never_touches_the_fabric(self):
        backend, _, _, stats = make_dir(n_vocal=1, n_mute=1)
        reply = backend.phantom_read(1, 9, now=42, strength=PhantomStrength.NULL)
        assert reply.done == 43
        assert all(arb.free_at == 0 for arb in backend.fabric.arbiters)
        assert stats["dir.phantom_null"] == 1

    def test_mute_fills_never_reach_the_directory(self):
        backend, _, _, _ = make_dir(n_vocal=1, n_mute=1)
        backend.phantom_read(1, 4, now=0, strength=PhantomStrength.GLOBAL)
        # The mute installed a copy, but the home must not know of it.
        assert home_entry(backend, 4) is None

    def test_mute_evict_dropped(self):
        backend, memory, _, stats = make_dir(n_vocal=1, n_mute=1)
        backend.mute_evict(1, 4)
        assert stats["dir.mute_evicts_dropped"] == 1
        assert memory.read_word(4 * 64) == 0  # Definition 5: never written

    def test_sync_request_restores_pair(self):
        backend, _, l1s, stats = make_dir(n_vocal=2, n_mute=1)
        backend.vocal_write(1, 8, now=0)
        l1s[1].write_word(8 * 64, 1)  # competing writer
        l1s[2].fill(8, [0] * 8, LineState.EXCLUSIVE)  # stale mute copy
        reply = backend.synchronizing_access(0, 2, 8, now=10)
        assert reply.data[0] == 1
        assert l1s[0].read_word(8 * 64) == 1
        assert l1s[2].read_word(8 * 64) == 1
        assert l1s[1].lookup(8) is None
        entry = home_entry(backend, 8)
        assert entry.owner() == 0  # vocal owns; the mute copy is invisible
        assert stats["dir.sync_requests"] == 1


# The system-level tests pin bus coherence explicitly so the
# REPRO_COHERENCE CI leg cannot retarget them.
DIR_SMALL = SMALL.replace(
    cache_style=CacheStyle.SNOOPY,
    bus=dataclasses.replace(SMALL.bus, coherence=CoherenceStyle.DIRECTORY),
)

LOOPY = """
    movi r1, 25
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


class TestDirectorySystems:
    @pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.STRICT, Mode.REUNION])
    def test_all_modes_produce_golden_results(self, mode):
        config = DIR_SMALL.replace(n_logical=1).with_redundancy(mode=mode)
        system = CMPSystem(config, [assemble(LOOPY)])
        system.run_until_idle(max_cycles=500_000)
        golden = golden_run(assemble(LOOPY)).registers
        for reg in range(5):
            assert system.vocal_cores[0].arf.read(reg) == golden.read(reg)

    def test_reunion_race_resolves_on_directory(self):
        from tests.core.test_pair_integration import TestInputIncoherence as Race

        config = DIR_SMALL.replace(n_logical=2).with_redundancy(
            mode=Mode.REUNION, comparison_latency=10
        )
        system = CMPSystem(config, [assemble(Race.READER), assemble(Race.WRITER)])
        system.run_until_idle(max_cycles=200_000)
        assert not system.failed
        reader = system.vocal_cores[0]
        assert reader.arf.read(3) == 77  # the published payload

    def test_null_phantom_forward_progress_on_directory(self):
        config = DIR_SMALL.replace(n_logical=1).with_redundancy(
            mode=Mode.REUNION, phantom=PhantomStrength.NULL
        )
        cold = """
            .word 0x800 1
            .word 0x840 2
            movi r1, 0x800
            load r2, [r1]
            load r3, [r1+64]
            add r4, r2, r3
            halt
        """
        system = CMPSystem(config, [assemble(cold)])
        system.run_until_idle(max_cycles=200_000)
        assert not system.failed
        assert system.vocal_cores[0].arf.read(4) == 3
        assert system.recoveries() >= 1

    def test_dual_use_works_on_directory(self):
        config = DIR_SMALL.replace(n_logical=1).with_redundancy(mode=Mode.REUNION)
        system = CMPSystem(config, [assemble(LOOPY)])
        system.run(60)
        promoted = system.decouple(0, assemble("movi r5, 123\nhalt"))
        system.run_until_idle(max_cycles=200_000)
        assert promoted.arf.read(5) == 123
        golden = golden_run(assemble(LOOPY)).registers
        assert system.vocal_cores[0].arf.read(2) == golden.read(2)

    def test_manycore_preset_boots_and_retires(self):
        """The stock 8-core (4-pair) config runs real programs across
        all four pairs on the non-degenerate interconnect."""
        config = MANYCORE_8
        assert config.bus.coherence is CoherenceStyle.DIRECTORY
        system = CMPSystem(config, [assemble(LOOPY)] * config.n_logical)
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        golden = golden_run(assemble(LOOPY)).registers
        for core in system.vocal_cores:
            assert core.arf.read(2) == golden.read(2)
