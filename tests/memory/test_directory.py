"""Unit tests for the coherence directory."""

from repro.memory import Directory, DirectoryEntry


class TestDirectoryEntry:
    def test_starts_idle(self):
        entry = DirectoryEntry()
        assert entry.owner is None
        assert not entry.sharers
        assert entry.is_idle()

    def test_not_idle_with_owner_or_sharers(self):
        entry = DirectoryEntry()
        entry.owner = 2
        assert not entry.is_idle()
        entry.owner = None
        entry.sharers.add(1)
        assert not entry.is_idle()


class TestDirectory:
    def test_entry_materialized_on_demand(self):
        directory = Directory()
        assert directory.peek(7) is None
        entry = directory.entry(7)
        assert directory.peek(7) is entry
        assert len(directory) == 1

    def test_entry_is_stable(self):
        directory = Directory()
        assert directory.entry(3) is directory.entry(3)

    def test_drop_if_idle(self):
        directory = Directory()
        entry = directory.entry(5)
        entry.sharers.add(0)
        directory.drop_if_idle(5)
        assert len(directory) == 1  # still in use
        entry.sharers.clear()
        directory.drop_if_idle(5)
        assert len(directory) == 0

    def test_drop_missing_is_noop(self):
        Directory().drop_if_idle(99)
