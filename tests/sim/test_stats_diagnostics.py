"""Stats is the architectural record; strategy diagnostics stay out.

``CMPSystem.collect_stats`` documents the contract this file enforces:
every counter folded into :class:`~repro.sim.stats.Stats` must be
bit-identical across simulation strategies (naive/event kernel,
dual/replay execution, telemetry on/off), because the differential
tests compare whole snapshots.  Diagnostics that *measure the strategy*
— ``CMPSystem.steps``, ``pair.mirror_cycles``, ``core.replayed_binds``,
anything telemetry records — would differ between equivalent runs, so
leaking any of them into Stats silently breaks every equivalence test.
"""

from __future__ import annotations

from repro.isa import assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode
from repro.sim.options import SimOptions
from tests.core.helpers import SMALL

PROG = """
    movi r1, 30
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

#: Name fragments that mark a counter as a strategy diagnostic.
FORBIDDEN_FRAGMENTS = ("steps", "mirror", "replay", "obs", "telemetry", "trace")

CONFIG = SMALL.replace(n_logical=1).with_redundancy(
    mode=Mode.REUNION, comparison_latency=10, fingerprint_interval=8
)


def _run(options: SimOptions) -> CMPSystem:
    system = CMPSystem(CONFIG, [assemble(PROG)], options=options)
    system.run_until_idle(max_cycles=500_000)
    return system


class TestNoDiagnosticLeaks:
    def test_no_strategy_counter_names(self):
        system = _run(SimOptions(trace="full"))
        snapshot = system.collect_stats().snapshot()
        offenders = [
            name
            for name in snapshot
            if any(fragment in name.lower() for fragment in FORBIDDEN_FRAGMENTS)
        ]
        assert offenders == []

    def test_steps_differ_but_stats_are_equal(self):
        # The event kernel skips idle cycles, so it steps strictly fewer
        # times than the naive kernel on a memory-bound program — the
        # very quantity that must not appear in Stats.
        event = _run(SimOptions(kernel="event"))
        naive = _run(SimOptions(kernel="naive"))
        assert event.steps < naive.steps
        assert event.collect_stats().snapshot() == naive.collect_stats().snapshot()

    def test_mirror_cycles_differ_but_stats_are_equal(self):
        replay = _run(SimOptions(execution="replay"))
        dual = _run(SimOptions(execution="dual"))
        assert replay.pairs[0].mirror_cycles > 0
        assert dual.pairs[0].mirror_cycles == 0
        assert replay.collect_stats().snapshot() == dual.collect_stats().snapshot()
