"""The telemetry contract: observe everything, change nothing.

Two halves:

* **Bit identity** — a run with telemetry armed (any level) must produce
  exactly the same architectural results as the same run with telemetry
  off.  The sampler and emitters only ever read simulator state.
* **Strategy independence** — the *event stream itself* describes the
  simulated machine, not the simulation strategy: a fault-injected run
  under replay execution and under dual execution must emit identical
  streams (order and payload), except for the mirror-window kinds in
  :data:`~repro.obs.events.STRATEGY_KINDS`, which exist only under
  replay by definition.
"""

from __future__ import annotations

import pytest

from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.obs.events import STRATEGY_KINDS
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode, PhantomStrength
from repro.sim.options import SimOptions
from tests.core.helpers import SMALL

#: Mixed compute: ALU work, stores, loads, a serializing atomic,
#: branches — exercises comparison, sync requests and the check gate.
MIXED = """
    movi r1, 40
    movi r2, 0
    movi r3, 0x400
    movi r6, 0x900
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    atomic r5, [r6], r1
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def _config(
    phantom: PhantomStrength = PhantomStrength.GLOBAL, fingerprint_interval: int = 8
):
    return SMALL.replace(n_logical=1).with_redundancy(
        mode=Mode.REUNION,
        comparison_latency=10,
        fingerprint_interval=fingerprint_interval,
        phantom=phantom,
    )


def _run(options: SimOptions, phantom=PhantomStrength.GLOBAL) -> CMPSystem:
    system = CMPSystem(_config(phantom), [assemble(MIXED)], options=options)
    system.run_until_idle(max_cycles=500_000)
    return system


def _observe(system: CMPSystem) -> dict:
    return {
        "now": system.now,
        "stats": dict(system.collect_stats().snapshot()),
        "arf": [[core.arf.read(reg) for reg in range(8)] for core in system.cores],
        "recovery_log": [pair.recovery_log for pair in system.pairs],
    }


class TestBitIdentity:
    @pytest.mark.parametrize("level", ["metrics", "events", "full"])
    def test_armed_run_matches_disarmed(self, level):
        baseline = _observe(_run(SimOptions()))
        armed_system = _run(SimOptions(trace=level))
        assert _observe(armed_system) == baseline
        # The run must have actually been observed, or this proves nothing.
        assert armed_system.obs is not None
        assert armed_system.obs.metrics.rows or armed_system.obs.log.emitted

    def test_events_level_sees_the_taxonomy(self):
        system = _run(SimOptions(trace="events"))
        kinds = set(system.obs.log.counts())
        assert "fingerprint.compare" in kinds
        assert "sync.request" in kinds  # the atomic serializes every loop

    def test_full_level_adds_diagnostics(self):
        events = set(_run(SimOptions(trace="events")).obs.log.counts())
        full = set(_run(SimOptions(trace="full")).obs.log.counts())
        assert events <= full
        assert "fingerprint.close" in full - events

    def test_off_allocates_nothing(self):
        system = CMPSystem(_config(), [assemble(MIXED)], options=SimOptions())
        assert system.obs is None
        assert system.controller.obs is None
        assert all(core.obs is None for core in system.cores)
        assert all(pair.obs is None for pair in system.pairs)


def _fault_stream(execution: str, kernel: str) -> tuple[list[dict], CMPSystem]:
    system = CMPSystem(
        _config(),
        [assemble(MIXED)],
        options=SimOptions(execution=execution, kernel=kernel, trace="events"),
    )
    injector = FaultInjector(seed=7)
    injector.attach(system.cores[1])  # the mute
    injector.inject_once(after=40)
    system.run_until_idle(max_cycles=500_000)
    stream = [
        event.to_dict()
        for event in system.obs.log
        if event.kind not in STRATEGY_KINDS
    ]
    return stream, system


@pytest.mark.parametrize("kernel", ["naive", "event"])
class TestReplayDualDifferential:
    def test_fault_injected_streams_identical(self, kernel):
        dual_stream, dual_system = _fault_stream("dual", kernel)
        replay_stream, replay_system = _fault_stream("replay", kernel)
        # Order and payload, record for record (cycle stamps included).
        assert dual_stream == replay_stream
        assert _observe(dual_system) == _observe(replay_system)

        kinds = {record["kind"] for record in dual_stream}
        assert "fault.inject" in kinds
        assert "fingerprint.mismatch" in kinds
        assert "recovery.start" in kinds
        assert "recovery.rollback" in kinds
        assert "recovery.resume" in kinds
        assert dual_system.recoveries() >= 1

    def test_mismatch_records_carry_the_divergence(self, kernel):
        stream, _ = _fault_stream("dual", kernel)
        mismatches = [r for r in stream if r["kind"] == "fingerprint.mismatch"]
        assert mismatches
        first = mismatches[0]
        assert first["cause"] in {"fingerprint", "count", "poison"}
        assert first["vocal_fp"] != first["mute_fp"] or first["cause"] != "fingerprint"


class TestRingBound:
    def test_capacity_bounds_memory_not_accounting(self):
        system = _run(SimOptions(trace="events", trace_capacity=8))
        log = system.obs.log
        assert len(log) == 8
        assert log.emitted > 8
        assert log.dropped == log.emitted - 8
        # The survivors are the newest records.
        cycles = [event.cycle for event in log]
        assert cycles == sorted(cycles)
