"""SimOptions resolution and the CMPSystem legacy-kwargs shim."""

import warnings

import pytest

import repro.sim.cmp as cmp_module
from repro.isa import assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode
from repro.sim.options import SimOptions, TRACE_LEVELS, options_key_payload
from tests.core.helpers import SMALL

PROG = """
    movi r1, 3
    movi r2, 4
    add r3, r1, r2
    halt
"""

CONFIG = SMALL.with_redundancy(mode=Mode.NONREDUNDANT)


def _system(**kwargs) -> CMPSystem:
    return CMPSystem(CONFIG, [assemble(PROG)], **kwargs)


class TestValidation:
    def test_defaults_are_valid(self):
        options = SimOptions()
        assert options.kernel == "event"
        assert options.execution == "replay"
        assert options.trace == "off"
        assert not options.telemetry_armed

    @pytest.mark.parametrize("level", TRACE_LEVELS[1:])
    def test_armed_levels(self, level):
        assert SimOptions(trace=level).telemetry_armed

    def test_rejects_unknown_values(self):
        with pytest.raises(ValueError, match="kernel"):
            SimOptions(kernel="quantum")
        with pytest.raises(ValueError, match="execution"):
            SimOptions(execution="triple")
        with pytest.raises(ValueError, match="trace"):
            SimOptions(trace="verbose")
        with pytest.raises(ValueError, match="capacity"):
            SimOptions(trace_capacity=0)
        with pytest.raises(ValueError, match="max_cycles"):
            SimOptions(max_cycles=0)

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            SimOptions().replace(kernel="bogus")


class TestFromEnv:
    def test_env_beats_defaults(self):
        env = {"REPRO_KERNEL": "naive", "REPRO_EXEC": "dual", "REPRO_TRACE": "events"}
        options = SimOptions.from_env(env)
        assert (options.kernel, options.execution, options.trace) == (
            "naive",
            "dual",
            "events",
        )

    def test_explicit_overrides_beat_env(self):
        env = {"REPRO_KERNEL": "naive", "REPRO_EXEC": "dual"}
        options = SimOptions.from_env(env, kernel="event", trace="full")
        assert options.kernel == "event"
        assert options.execution == "dual"
        assert options.trace == "full"

    def test_none_overrides_fall_through(self):
        # Argparse results pass straight in: unset flags arrive as None.
        options = SimOptions.from_env({"REPRO_EXEC": "dual"}, execution=None)
        assert options.execution == "dual"

    def test_capacity_parsed_from_env(self):
        assert SimOptions.from_env({"REPRO_TRACE_CAPACITY": "128"}).trace_capacity == 128
        assert SimOptions.from_env({"REPRO_TRACE_CAPACITY": ""}).trace_capacity == 65_536

    def test_empty_env_gives_defaults(self):
        assert SimOptions.from_env({}) == SimOptions()


class TestKeyPayload:
    def test_every_current_field_is_key_neutral(self):
        assert options_key_payload(None) == {}
        assert (
            options_key_payload(
                SimOptions(
                    kernel="naive",
                    execution="dual",
                    trace="full",
                    trace_capacity=8,
                    max_cycles=99,
                    seed=7,
                )
            )
            == {}
        )


class TestCMPSystemOptions:
    def test_options_is_the_primary_path(self):
        system = _system(options=SimOptions(kernel="naive", execution="dual"))
        assert system.kernel == "naive"
        assert system.execution == "dual"
        assert system.options.trace == "off"
        assert system.obs is None

    def test_options_path_never_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _system(options=SimOptions())
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_options_and_legacy_kwargs_conflict(self):
        with pytest.raises(ValueError, match="SimOptions"):
            _system(options=SimOptions(), kernel="naive")
        with pytest.raises(ValueError, match="SimOptions"):
            _system(options=SimOptions(), execution="dual")

    def test_max_cycles_threads_into_run_until_idle(self):
        system = _system(options=SimOptions(max_cycles=2))
        with pytest.raises(RuntimeError, match="2 cycles"):
            system.run_until_idle()

    def test_explicit_max_cycles_still_overrides(self):
        system = _system(options=SimOptions(max_cycles=2))
        assert system.run_until_idle(max_cycles=100_000) > 0


class TestLegacyShim:
    def test_legacy_kwargs_still_work(self, monkeypatch):
        monkeypatch.setattr(cmp_module, "_LEGACY_KWARGS_WARNED", True)  # silence
        system = _system(kernel="naive", execution="dual")
        assert system.kernel == "naive"
        assert system.execution == "dual"

    def test_legacy_env_vars_still_work(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "naive")
        monkeypatch.setenv("REPRO_EXEC", "dual")
        system = _system()
        assert system.kernel == "naive"
        assert system.execution == "dual"

    def test_legacy_kwargs_warn_exactly_once(self, monkeypatch):
        monkeypatch.setattr(cmp_module, "_LEGACY_KWARGS_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _system(kernel="naive")
            _system(kernel="naive")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "SimOptions" in str(deprecations[0].message)

    def test_plain_construction_does_not_warn(self, monkeypatch):
        monkeypatch.setattr(cmp_module, "_LEGACY_KWARGS_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _system()
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
