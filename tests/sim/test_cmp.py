"""Tests for CMP system assembly across the three execution models."""

import pytest

from repro.core.check_stage import CheckGate
from repro.core.strict import StrictCheckGate
from repro.isa import assemble
from repro.pipeline.gates import ImmediateGate
from repro.sim.cmp import CMPSystem
from repro.sim.config import DEFAULT_CONFIG, CacheStyle, Mode

HALTING = "movi r1, 3\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt"


def small(mode, n=2):
    return DEFAULT_CONFIG.replace(n_logical=n).with_redundancy(mode=mode)


class TestAssembly:
    def test_program_count_must_match(self):
        with pytest.raises(ValueError):
            CMPSystem(small(Mode.NONREDUNDANT, n=2), [assemble(HALTING)])

    def test_schedule_count_must_match(self):
        with pytest.raises(ValueError):
            CMPSystem(
                small(Mode.NONREDUNDANT, n=1), [assemble(HALTING)], itlb_schedules=[None, None]
            )

    def test_nonredundant_structure(self):
        system = CMPSystem(small(Mode.NONREDUNDANT), [assemble(HALTING)] * 2)
        assert len(system.cores) == 2
        assert not system.pairs
        assert all(isinstance(c.gate, ImmediateGate) for c in system.cores)

    def test_strict_structure(self):
        system = CMPSystem(small(Mode.STRICT), [assemble(HALTING)] * 2)
        assert len(system.cores) == 2
        assert all(isinstance(c.gate, StrictCheckGate) for c in system.cores)

    def test_reunion_structure(self):
        system = CMPSystem(small(Mode.REUNION), [assemble(HALTING)] * 2)
        assert len(system.cores) == 4
        assert len(system.pairs) == 2
        assert all(isinstance(c.gate, CheckGate) for c in system.cores)
        # Vocal cores come first; mutes own phantom-issuing ports.
        assert not system.cores[0].port.is_mute
        assert system.cores[2].port.is_mute

    def test_reunion_scales_l2_banks(self):
        # A shared-L2 modeling choice; pinned to that backend.
        shared = small(Mode.NONREDUNDANT).replace(cache_style=CacheStyle.SHARED)
        base = CMPSystem(shared, [assemble(HALTING)] * 2)
        reunion = CMPSystem(
            small(Mode.REUNION).replace(cache_style=CacheStyle.SHARED),
            [assemble(HALTING)] * 2,
        )
        assert reunion.controller.config.banks == 2 * base.controller.config.banks

    def test_memory_images_merged(self):
        a = assemble(".word 0x100 1\nhalt")
        b = assemble(".word 0x200 2\nhalt")
        system = CMPSystem(small(Mode.NONREDUNDANT), [a, b])
        assert system.memory.read_word(0x100) == 1
        assert system.memory.read_word(0x200) == 2


class TestRunControl:
    def test_run_until_idle(self):
        system = CMPSystem(small(Mode.NONREDUNDANT), [assemble(HALTING)] * 2)
        cycles = system.run_until_idle()
        assert system.idle
        assert cycles == system.now
        assert system.user_instructions() == 2 * 8

    def test_run_until_idle_times_out(self):
        forever = assemble("loop:\njump loop\nhalt")
        system = CMPSystem(small(Mode.NONREDUNDANT), [forever] * 2)
        with pytest.raises(RuntimeError):
            system.run_until_idle(max_cycles=200)

    def test_run_fixed_cycles(self):
        system = CMPSystem(small(Mode.NONREDUNDANT), [assemble(HALTING)] * 2)
        system.run(50)
        assert system.now == 50

    def test_collect_stats(self):
        system = CMPSystem(small(Mode.REUNION), [assemble(HALTING)] * 2)
        system.run_until_idle()
        stats = system.collect_stats()
        assert stats["system.cycles"] == system.now
        assert stats["system.user_instructions"] == 16
        assert stats["core0.user_retired"] == 8
        assert "pair0.recoveries" in stats

    def test_metrics_helpers(self):
        system = CMPSystem(small(Mode.REUNION), [assemble(HALTING)] * 2)
        system.run_until_idle()
        assert system.ipc() > 0
        assert system.recoveries() == 0
        assert not system.failed
