"""ProtectionPolicy schema, spec parsing, options resolution, cache keys.

Behavioral tests (what each policy does to a running pair) live in
tests/core/test_protection_policies.py; this module covers the API
surface the redesign introduced: the frozen policy dataclass and its
validation, the ``mode[:params]`` spec grammar, the
``SimOptions.protection`` / ``execution`` unification, and the cache-key
contract (policies are result-affecting and hashed; the replay bit is
result-neutral and excluded).
"""

import pytest

from repro.exec.jobs import SampleJob
from repro.sim.config import (
    Mode,
    ProtectionPolicy,
    apply_env_protection,
    parse_policy,
    resolve_pair_policies,
)
from repro.sim.options import SimOptions
from tests.core.helpers import SMALL

REUNION = SMALL.with_redundancy(mode=Mode.REUNION)


class TestPolicyValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="protection mode"):
            ProtectionPolicy(mode="paranoid")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "full", "mute_width": 2},
            {"mode": "full", "checked_fraction": 0.5},
            {"mode": "little-mute", "mute_width": 2, "checked_fraction": 0.5},
            {"mode": "unprotected", "off_threshold": 1},
            {"mode": "interval-sampled", "checked_fraction": 0.5, "on_threshold": 1},
        ],
    )
    def test_params_bound_to_their_mode(self, kwargs):
        with pytest.raises(ValueError, match="only applies to mode"):
            ProtectionPolicy(**kwargs)

    @pytest.mark.parametrize("width", [None, 0, -1])
    def test_little_mute_needs_positive_width(self, width):
        with pytest.raises(ValueError, match="mute_width"):
            ProtectionPolicy(mode="little-mute", mute_width=width)

    @pytest.mark.parametrize("fraction", [None, 0.0, 1.0, -0.25, 1.5])
    def test_sampled_fraction_strictly_interior(self, fraction):
        # The endpoints are spelled 'unprotected' and 'full'; a sampled
        # policy that checks nothing or everything is a config bug.
        with pytest.raises(ValueError, match="checked_fraction"):
            ProtectionPolicy(mode="interval-sampled", checked_fraction=fraction)

    @pytest.mark.parametrize(
        "off,on,length",
        [
            (0, 0, 4),  # off_threshold < 1
            (4, 5, 4),  # on > off: oscillation, not hysteresis
            (4, -1, 4),  # negative on_threshold
            (4, 2, 0),  # empty off-window
        ],
    )
    def test_dynamic_threshold_constraints(self, off, on, length):
        with pytest.raises(ValueError, match="dynamic"):
            ProtectionPolicy(
                mode="dynamic",
                off_threshold=off,
                on_threshold=on,
                off_intervals=length,
            )

    def test_dynamic_equal_thresholds_allowed(self):
        policy = ProtectionPolicy.dynamic(3, 3, 2)
        assert policy.off_threshold == policy.on_threshold == 3


class TestConfigValidation:
    def test_policies_require_reunion(self):
        with pytest.raises(ValueError, match="REUNION"):
            SMALL.with_redundancy(mode=Mode.NONREDUNDANT).with_protection(
                ProtectionPolicy.full()
            )

    def test_one_policy_per_pair(self):
        with pytest.raises(ValueError, match="one policy per logical pair"):
            REUNION.replace(n_logical=2, pair_policies=(ProtectionPolicy.full(),))

    def test_entries_must_be_policies(self):
        with pytest.raises(ValueError, match="not a ProtectionPolicy"):
            REUNION.replace(pair_policies=("full",))

    def test_little_mute_cannot_exceed_core_width(self):
        too_wide = ProtectionPolicy.little_mute(SMALL.core.width + 1)
        with pytest.raises(ValueError, match="exceeds the core width"):
            REUNION.with_protection(too_wide)

    def test_checks_everything(self):
        assert ProtectionPolicy.full().checks_everything
        assert ProtectionPolicy.little_mute(2).checks_everything
        assert not ProtectionPolicy.interval_sampled(0.5).checks_everything
        assert not ProtectionPolicy.unprotected().checks_everything
        assert not ProtectionPolicy.dynamic().checks_everything


class TestSpecGrammar:
    @pytest.mark.parametrize(
        "spec",
        [
            "full",
            "little-mute:2",
            "little-mute:1",
            "interval-sampled:0.5",
            "interval-sampled:0.25",
            "dynamic:8,2,16",
            "dynamic:3,3,1",
            "unprotected",
        ],
    )
    def test_round_trips_with_describe(self, spec):
        assert parse_policy(spec).describe() == spec

    def test_defaults_fill_omitted_params(self):
        assert parse_policy("little-mute") == ProtectionPolicy.little_mute(2)
        assert parse_policy("interval-sampled") == (
            ProtectionPolicy.interval_sampled(0.5)
        )
        assert parse_policy("dynamic") == ProtectionPolicy.dynamic()

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "bogus",
            "full:2",  # full takes no params
            "unprotected:0",
            "little-mute:0",
            "little-mute:wide",
            "interval-sampled:1.5",
            "dynamic:1",  # needs all three params
            "dynamic:4,5,4",  # on > off
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError, match="protection"):
            parse_policy(spec)


class TestOptionsUnification:
    def test_protection_derived_from_execution(self):
        assert SimOptions(execution="replay").protection == ProtectionPolicy.full(
            replay=True
        )
        assert SimOptions(execution="dual").protection == ProtectionPolicy.full(
            replay=False
        )

    def test_protection_wins_over_execution(self):
        options = SimOptions(
            execution="replay", protection=ProtectionPolicy.full(replay=False)
        )
        assert options.execution == "dual"

    @pytest.mark.parametrize(
        "policy",
        [
            ProtectionPolicy.little_mute(2),
            ProtectionPolicy.interval_sampled(0.5),
            ProtectionPolicy.unprotected(),
            ProtectionPolicy.dynamic(),
        ],
    )
    def test_only_full_lives_on_options(self, policy):
        # Anything else changes results, so it belongs on the hashed
        # SystemConfig.pair_policies, never on result-neutral options.
        with pytest.raises(ValueError, match="pair_policies"):
            SimOptions(protection=policy)

    def test_resolution_defaults_to_full_per_pair(self):
        policies = resolve_pair_policies(REUNION.replace(n_logical=3), "replay")
        assert policies == (ProtectionPolicy.full(replay=True),) * 3

    def test_explicit_policies_win_over_execution(self):
        config = REUNION.with_protection(ProtectionPolicy.little_mute(2))
        assert resolve_pair_policies(config, "replay") == config.pair_policies


class TestEnvOverride:
    def test_unset_is_identity(self):
        assert apply_env_protection(REUNION, {}) is REUNION

    def test_spec_applies_uniformly(self):
        config = apply_env_protection(
            REUNION.replace(n_logical=2), {"REPRO_PROTECTION": "little-mute:2"}
        )
        assert config.pair_policies == (ProtectionPolicy.little_mute(2),) * 2

    def test_non_reunion_untouched(self):
        flat = SMALL.with_redundancy(mode=Mode.NONREDUNDANT)
        assert (
            apply_env_protection(flat, {"REPRO_PROTECTION": "little-mute"}) is flat
        )

    def test_explicit_policies_not_overridden(self):
        pinned = REUNION.with_protection(ProtectionPolicy.interval_sampled(0.5))
        assert (
            apply_env_protection(pinned, {"REPRO_PROTECTION": "unprotected"})
            is pinned
        )

    def test_wide_little_mute_clamped_to_core_width(self):
        config = apply_env_protection(
            REUNION, {"REPRO_PROTECTION": f"little-mute:{SMALL.core.width + 2}"}
        )
        assert config.pair_policies[0].mute_width == SMALL.core.width


def _job(config, options=None):
    return SampleJob(
        config=config, workload_name="compute-kernel", seed=0,
        warmup=100, measure=200, options=options,
    )


class TestCacheKeys:
    def test_same_policy_same_key(self):
        policy = ProtectionPolicy.interval_sampled(0.5)
        first = _job(REUNION.with_protection(policy))
        second = _job(REUNION.with_protection(ProtectionPolicy.interval_sampled(0.5)))
        assert first.key == second.key

    def test_replay_bit_excluded_from_keys(self):
        # replay picks between two bit-identical execution strategies,
        # so it must never fragment the sample cache.
        replay = _job(REUNION.with_protection(ProtectionPolicy.full(replay=True)))
        dual = _job(REUNION.with_protection(ProtectionPolicy.full(replay=False)))
        assert replay.key == dual.key

    def test_different_policies_different_keys(self):
        keys = {
            _job(REUNION.with_protection(parse_policy(spec))).key
            for spec in (
                "full",
                "little-mute:2",
                "interval-sampled:0.5",
                "dynamic:8,2,16",
                "unprotected",
            )
        }
        assert len(keys) == 5

    def test_options_protection_never_touches_keys(self):
        bare = _job(REUNION)
        armed = _job(
            REUNION, options=SimOptions(protection=ProtectionPolicy.full(replay=False))
        )
        assert bare.key == armed.key
