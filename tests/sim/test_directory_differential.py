"""Snoopy-vs-directory differential suite.

The directory backend's correctness anchor: at the *degenerate*
interconnect point — one home bank, zero link latency, weight-0 (FCFS)
arbitration — every directory timing formula reduces algebraically to
the snoopy bus's, and the directory's exact presence tracking reaches
the same forward/grant decisions a bus snoop would.  Whole simulated
systems must therefore be **bit-identical** between the two backends:
cycles, architectural state, recovery counts, and the full Stats
snapshot (modulo the backends' own ``bus.*`` / ``dir.*`` counters,
which must agree pairwise under the name mapping below).

Runs cover both kernels, both execution strategies, and fault-injected
runs — any timing or protocol divergence between the backends shows up
as a diff here long before it would corrupt a paper figure.
"""

import dataclasses

import pytest

from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import (
    MANYCORE_16,
    CacheStyle,
    CoherenceStyle,
    Mode,
)
from repro.sim.options import SimOptions
from tests.core.helpers import SMALL
from tests.core.test_pair_integration import TestInputIncoherence as Race

#: bus counter -> the directory counter it must equal at the degenerate
#: point.  (dir.invals / dir.forwards / dir.upgrades are directory-only
#: diagnostics with no bus analogue; they are excluded from identity.)
COUNTER_MAP = {
    "bus.reads": "dir.gets",
    "bus.writes": "dir.getm",
    "bus.memory_reads": "dir.memory_reads",
    "bus.writebacks": "dir.writebacks",
    "bus.phantom_null": "dir.phantom_null",
    "bus.phantom_snooped": "dir.phantom_snooped",
    "bus.phantom_garbage": "dir.phantom_garbage",
    "bus.phantom_memory": "dir.phantom_memory",
    "bus.sync_requests": "dir.sync_requests",
    "bus.mute_evicts_dropped": "dir.mute_evicts_dropped",
}

SNOOPY_CONFIG = SMALL.replace(
    cache_style=CacheStyle.SNOOPY,
    bus=dataclasses.replace(SMALL.bus, coherence=CoherenceStyle.SNOOPY),
)

#: The degenerate directory: same snoop/transfer/occupancy/mshr numbers,
#: one bank, zero-latency links, FCFS arbitration.
DEGENERATE_CONFIG = SMALL.replace(
    cache_style=CacheStyle.SNOOPY,
    bus=dataclasses.replace(
        SMALL.bus,
        coherence=CoherenceStyle.DIRECTORY,
        dir_banks=1,
        link_latency=0,
        wrr_vocal_weight=0,
        wrr_mute_weight=0,
    ),
)


def _observe(base, kernel, execution, inject):
    """Run the 2-pair Figure 1 race; return everything comparable."""
    config = base.replace(n_logical=2).with_redundancy(
        mode=Mode.REUNION, comparison_latency=10
    )
    system = CMPSystem(
        config,
        [assemble(Race.READER), assemble(Race.WRITER)],
        options=SimOptions(kernel=kernel, execution=execution),
    )
    if inject:
        injector = FaultInjector(seed=7)
        injector.attach(system.cores[1])  # pair 0's mute
        injector.inject_once(after=40)
    cycles = system.run_until_idle(max_cycles=200_000)
    snapshot = dict(system.collect_stats().snapshot())
    arch = {
        key: value
        for key, value in snapshot.items()
        if not key.startswith(("bus.", "dir."))
    }
    fabric = {
        key: value
        for key, value in snapshot.items()
        if key.startswith(("bus.", "dir."))
    }
    registers = tuple(
        tuple(core.arf.read(reg) for reg in range(9))
        for core in system.vocal_cores
    )
    recoveries = tuple(
        (pair.recoveries, pair.sync_requests) for pair in system.pairs
    )
    return cycles, arch, fabric, registers, recoveries, system.failed


@pytest.mark.parametrize("kernel", ["naive", "event"])
@pytest.mark.parametrize("execution", ["dual", "replay"])
@pytest.mark.parametrize("inject", [False, True])
class TestDegenerateBitIdentity:
    def test_race_is_bit_identical(self, kernel, execution, inject):
        snoopy = _observe(SNOOPY_CONFIG, kernel, execution, inject)
        direct = _observe(DEGENERATE_CONFIG, kernel, execution, inject)

        assert snoopy[0] == direct[0], "cycle counts diverged"
        assert snoopy[1] == direct[1], "architectural stats diverged"
        assert snoopy[3] == direct[3], "vocal register files diverged"
        assert snoopy[4] == direct[4], "recovery/sync accounting diverged"
        assert snoopy[5] == direct[5] is False

        for bus_key, dir_key in COUNTER_MAP.items():
            assert snoopy[2].get(bus_key, 0) == direct[2].get(dir_key, 0), (
                f"{bus_key} != {dir_key}"
            )


class TestDegenerateCoverage:
    def test_race_exercises_the_protocol(self):
        """The differential workload is only meaningful if it actually
        drives forwards, invalidations, sync requests and recoveries."""
        *_, fabric, _, recoveries, failed = _observe(
            DEGENERATE_CONFIG, "event", "dual", inject=False
        )
        assert not failed
        assert fabric.get("dir.sync_requests", 0) >= 1
        assert fabric.get("dir.phantom_snooped", 0) >= 1
        assert fabric.get("dir.invals", 0) >= 1
        assert recoveries[0][0] >= 1  # the racing pair recovered

    def test_injected_fault_is_contained_on_both_backends(self):
        for base in (SNOOPY_CONFIG, DEGENERATE_CONFIG):
            *_, registers, _, failed = _observe(base, "event", "dual", True)
            assert not failed
            assert registers[0][3] == 77  # reader still saw the payload


class TestManycoreEndToEnd:
    def test_16_core_8_pair_runs_with_reunion_accounting(self):
        """A 16-core (8-pair) directory system runs an artifact workload
        end to end on the non-degenerate interconnect, with the
        phantom-read and recovery stats the bench report records."""
        from repro.workloads.micro import PointerChase

        config = MANYCORE_16
        assert config.n_logical == 8 and config.n_cores == 16
        workload = PointerChase(nodes=4096)
        programs = workload.programs(config.n_logical, 0)
        schedules = workload.itlb_schedules(config.n_logical, 0)
        system = CMPSystem(
            config, programs, schedules, options=SimOptions(kernel="event")
        )
        system.run(6_000)
        assert not system.failed
        snapshot = dict(system.collect_stats().snapshot())
        phantoms = sum(
            value
            for key, value in snapshot.items()
            if key.startswith("dir.phantom_")
        )
        assert phantoms > 0  # every pair's mute misses raise phantoms
        assert snapshot.get("dir.gets", 0) > 0
        assert sum(core.user_retired for core in system.vocal_cores) > 0
        # Recovery accounting is present (and per-pair) even when clean.
        for pair in system.pairs:
            assert f"pair{pair.pair_id}.recoveries" in snapshot
