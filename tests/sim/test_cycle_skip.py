"""Equivalence of the cycle-skipping kernel and the naive per-cycle loop.

The event-driven kernel's contract is *bit identity*: every statistic,
fingerprint comparison count, recovery, and architectural register value
must match the naive loop exactly, because skipped cycles are — by the
conservative ``next_event()`` contract — cycles in which no component
could have acted.  These tests run the same scenario under both kernels
and diff everything observable.
"""

from __future__ import annotations

import pytest

from repro.core.check_stage import CheckGate
from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode, PhantomStrength
from repro.workloads.micro import PointerChase
from tests.core.helpers import SMALL

#: A mixed workload: dependent ALU work, stores, loads, a serializing
#: atomic, branches — touches every pipeline phase the horizon models.
MIXED = """
    movi r1, 40
    movi r2, 0
    movi r3, 0x400
    movi r6, 0x900
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    atomic r5, [r6], r1
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

#: Memory-latency dominated: a dependent load chain that misses.
CHASE = PointerChase(nodes=64, chases_per_iteration=8)


def _config(mode: Mode, n_logical: int = 1):
    return SMALL.replace(n_logical=n_logical).with_redundancy(
        mode=mode,
        comparison_latency=10,
        fingerprint_interval=8,
        phantom=PhantomStrength.GLOBAL,
    )


def _observe(system: CMPSystem) -> dict:
    """Everything the equivalence contract covers, in one comparable dict."""
    observation = {
        "now": system.now,
        "stats": dict(system.collect_stats().snapshot()),
        "arf": [
            [core.arf.read(reg) for reg in range(8)] for core in system.cores
        ],
        "user_retired": [core.user_retired for core in system.cores],
        "cycles": [core.cycles for core in system.cores],
    }
    for index, core in enumerate(system.cores):
        gate = core.gate
        if isinstance(gate, CheckGate):
            observation[f"gate{index}.intervals_closed"] = gate.intervals_closed
            observation[f"gate{index}.fingerprints_compared"] = gate.fingerprints_compared
    observation["recovery_log"] = [pair.recovery_log for pair in system.pairs]
    return observation


def _run_both(scenario) -> tuple[dict, dict, CMPSystem, CMPSystem]:
    """Run ``scenario(kernel)`` under both kernels; return observations."""
    naive = scenario("naive")
    event = scenario("event")
    return _observe(naive), _observe(event), naive, event


@pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.STRICT, Mode.REUNION])
class TestRunUntilIdleEquivalence:
    def test_mixed_workload(self, mode):
        def scenario(kernel):
            system = CMPSystem(
                _config(mode), [assemble(MIXED)], kernel=kernel
            )
            system.run_until_idle(max_cycles=500_000)
            return system

        naive, event, _, _ = _run_both(scenario)
        assert naive == event

    def test_two_logical_processors(self, mode):
        def scenario(kernel):
            system = CMPSystem(
                _config(mode, n_logical=2), [assemble(MIXED)] * 2, kernel=kernel
            )
            system.run_until_idle(max_cycles=500_000)
            return system

        naive, event, _, _ = _run_both(scenario)
        assert naive == event


@pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.STRICT, Mode.REUNION])
class TestWindowedRunEquivalence:
    """``run(cycles)`` windows (the sampling methodology's shape)."""

    def test_memory_bound_windows(self, mode):
        def scenario(kernel):
            system = CMPSystem(
                _config(mode), CHASE.programs(1, seed=0), kernel=kernel
            )
            system.run(1_500)  # warmup
            system.run(2_500)  # measure
            return system

        naive, event, _, skipping = _run_both(scenario)
        assert naive == event
        assert skipping.now == 4_000
        # The skipping kernel must actually skip on this workload, or the
        # tentpole is a no-op.
        assert skipping.steps < skipping.now

    def test_itlb_schedule(self, mode):
        def scenario(kernel):
            schedule = lambda index: index % 37 == 5  # noqa: E731 - pure
            system = CMPSystem(
                _config(mode),
                [assemble(MIXED)],
                itlb_schedules=[schedule],
                kernel=kernel,
            )
            system.run_until_idle(max_cycles=500_000)
            return system

        naive, event, _, _ = _run_both(scenario)
        assert naive == event


class TestFaultInjectionEquivalence:
    def test_single_upset_recovery_identical(self):
        def scenario(kernel):
            system = CMPSystem(
                _config(Mode.REUNION), [assemble(MIXED)], kernel=kernel
            )
            injector = FaultInjector(seed=7)
            injector.attach(system.cores[1])  # the mute
            injector.inject_once(after=40)
            system.run_until_idle(max_cycles=500_000)
            system.fault_records = [  # type: ignore[attr-defined]
                (r.seq, r.pc, r.bit, r.original, r.corrupted, r.cycle)
                for r in injector.records
            ]
            return system

        naive, event, naive_system, event_system = _run_both(scenario)
        assert naive == event
        assert naive_system.fault_records == event_system.fault_records
        assert naive_system.recoveries() >= 1
        assert naive_system.stats.snapshot()["pair0.mismatch_recoveries"] >= 1

    def test_periodic_upsets_identical(self):
        def scenario(kernel):
            system = CMPSystem(
                _config(Mode.REUNION), [assemble(MIXED)], kernel=kernel
            )
            injector = FaultInjector(interval=60, seed=3)
            injector.attach(system.cores[1])
            system.run_until_idle(max_cycles=500_000)
            return system

        naive, event, naive_system, _ = _run_both(scenario)
        assert naive == event
        assert naive_system.recoveries() >= 2


class TestTimeoutEquivalence:
    """The run_until_idle timeout must fire at the identical cycle count."""

    def test_timeout_cycle_identical(self):
        forever = assemble("loop:\njump loop\nhalt")

        def timeout_now(kernel):
            system = CMPSystem(
                _config(Mode.NONREDUNDANT), [forever], kernel=kernel
            )
            with pytest.raises(RuntimeError):
                system.run_until_idle(max_cycles=300)
            return system.now

        assert timeout_now("naive") == timeout_now("event")

    def test_stalled_system_timeout(self):
        # A load from an uncached address followed by an infinite loop:
        # long quiet stretches where the skip clamp at max_cycles matters.
        stalls = assemble("movi r1, 0x7000\nload r2, [r1]\nloop:\njump loop\nhalt")

        def timeout_now(kernel):
            system = CMPSystem(
                _config(Mode.NONREDUNDANT), [stalls], kernel=kernel
            )
            with pytest.raises(RuntimeError):
                system.run_until_idle(max_cycles=250)
            return system.now

        assert timeout_now("naive") == timeout_now("event")


class TestKernelSelection:
    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "naive")
        system = CMPSystem(_config(Mode.NONREDUNDANT), [assemble(MIXED)])
        assert system.kernel == "naive"
        monkeypatch.setenv("REPRO_KERNEL", "event")
        system = CMPSystem(_config(Mode.NONREDUNDANT), [assemble(MIXED)])
        assert system.kernel == "event"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "naive")
        system = CMPSystem(
            _config(Mode.NONREDUNDANT), [assemble(MIXED)], kernel="event"
        )
        assert system.kernel == "event"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            CMPSystem(_config(Mode.NONREDUNDANT), [assemble(MIXED)], kernel="magic")
