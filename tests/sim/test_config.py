"""Tests for system configuration (the reproduction's Table 1)."""

import dataclasses

import pytest

from repro.sim.config import (
    DEFAULT_CONFIG,
    PAPER_TABLE1,
    Consistency,
    CoreConfig,
    L1Config,
    L2Config,
    Mode,
    PhantomStrength,
    RedundancyConfig,
    SystemConfig,
    TLBMode,
)


class TestPaperTable1:
    """PAPER_TABLE1 must carry the paper's exact parameters."""

    def test_processor_parameters(self):
        assert PAPER_TABLE1.n_logical == 4
        assert PAPER_TABLE1.core.width == 4
        assert PAPER_TABLE1.core.rob_size == 256
        assert PAPER_TABLE1.core.store_buffer_size == 64

    def test_l1_parameters(self):
        assert PAPER_TABLE1.l1.size_bytes == 64 * 1024
        assert PAPER_TABLE1.l1.assoc == 2
        assert PAPER_TABLE1.l1.load_to_use == 2
        assert PAPER_TABLE1.l1.line_bytes == 64
        assert PAPER_TABLE1.l1.mshrs == 32

    def test_l2_parameters(self):
        assert PAPER_TABLE1.l2.size_bytes == 16 * 1024 * 1024
        assert PAPER_TABLE1.l2.assoc == 8
        assert PAPER_TABLE1.l2.banks == 4
        assert PAPER_TABLE1.l2.hit_latency == 35
        assert PAPER_TABLE1.l2.mshrs == 64

    def test_tlb_parameters(self):
        assert PAPER_TABLE1.tlb.itlb_entries == 128
        assert PAPER_TABLE1.tlb.dtlb_entries == 512
        assert PAPER_TABLE1.tlb.assoc == 2
        assert PAPER_TABLE1.tlb.page_bits == 13  # 8K pages

    def test_memory_latency_60ns_at_4ghz(self):
        assert PAPER_TABLE1.memory.latency == 240


class TestCoreCount:
    def test_nonredundant_and_strict_use_n_logical_cores(self):
        for mode in (Mode.NONREDUNDANT, Mode.STRICT):
            config = DEFAULT_CONFIG.with_redundancy(mode=mode)
            assert config.n_cores == config.n_logical

    def test_reunion_doubles_cores(self):
        config = DEFAULT_CONFIG.with_redundancy(mode=Mode.REUNION)
        assert config.n_cores == 2 * config.n_logical


class TestValidation:
    def test_negative_comparison_latency_rejected(self):
        with pytest.raises(ValueError):
            RedundancyConfig(comparison_latency=-1)

    def test_zero_fingerprint_interval_rejected(self):
        with pytest.raises(ValueError):
            RedundancyConfig(fingerprint_interval=0)

    def test_fingerprint_width_bounds(self):
        with pytest.raises(ValueError):
            RedundancyConfig(fingerprint_bits=2)
        with pytest.raises(ValueError):
            RedundancyConfig(fingerprint_bits=128)

    def test_l1_size_must_divide(self):
        with pytest.raises(ValueError):
            L1Config(size_bytes=1000, assoc=3)

    def test_l2_needs_banks(self):
        with pytest.raises(ValueError):
            L2Config(banks=0)

    def test_core_width_and_rob(self):
        with pytest.raises(ValueError):
            CoreConfig(width=0)
        with pytest.raises(ValueError):
            CoreConfig(width=8, rob_size=4)


class TestDerivedConfigs:
    def test_with_redundancy_is_pure(self):
        derived = DEFAULT_CONFIG.with_redundancy(mode=Mode.REUNION, comparison_latency=40)
        assert DEFAULT_CONFIG.redundancy.mode is Mode.NONREDUNDANT
        assert derived.redundancy.comparison_latency == 40
        assert derived.l1 == DEFAULT_CONFIG.l1

    def test_with_tlb(self):
        derived = DEFAULT_CONFIG.with_tlb(mode=TLBMode.SOFTWARE)
        assert derived.tlb.mode is TLBMode.SOFTWARE
        assert DEFAULT_CONFIG.tlb.mode is TLBMode.HARDWARE

    def test_replace(self):
        derived = DEFAULT_CONFIG.replace(consistency=Consistency.SC, n_logical=2)
        assert derived.consistency is Consistency.SC
        assert derived.n_logical == 2

    def test_configs_hashable_for_cache_keys(self):
        """The harness Runner uses SystemConfig as a dict key."""
        a = DEFAULT_CONFIG.with_redundancy(mode=Mode.REUNION)
        b = DEFAULT_CONFIG.with_redundancy(mode=Mode.REUNION)
        assert a == b and hash(a) == hash(b)
        assert {a: 1}[b] == 1

    def test_enums_cover_paper_design_space(self):
        assert {p.value for p in PhantomStrength} == {"null", "shared", "global"}
        assert {m.value for m in Mode} == {"nonredundant", "strict", "reunion"}
        assert {c.value for c in Consistency} == {"tso", "sc"}

    def test_default_config_preserves_ratios(self):
        """The scaled system keeps the paper's qualitative ratios."""
        assert DEFAULT_CONFIG.l2.size_bytes >= 16 * DEFAULT_CONFIG.l1.size_bytes
        assert DEFAULT_CONFIG.l2.hit_latency >= 5 * DEFAULT_CONFIG.l1.load_to_use
        assert DEFAULT_CONFIG.memory.latency >= 3 * DEFAULT_CONFIG.l2.hit_latency
        assert DEFAULT_CONFIG.tlb.dtlb_entries >= DEFAULT_CONFIG.tlb.itlb_entries

    def test_dataclass_replace_on_core(self):
        core = dataclasses.replace(DEFAULT_CONFIG.core, rob_size=256)
        config = dataclasses.replace(DEFAULT_CONFIG, core=core)
        assert config.core.rob_size == 256
