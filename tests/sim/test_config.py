"""Tests for system configuration (the reproduction's Table 1)."""

import dataclasses

import pytest

from repro.sim.config import (
    DEFAULT_CONFIG,
    MANYCORE_8,
    MANYCORE_16,
    MANYCORE_32,
    PAPER_TABLE1,
    BusConfig,
    CacheStyle,
    CoherenceStyle,
    Consistency,
    CoreConfig,
    L1Config,
    L2Config,
    MemoryConfig,
    Mode,
    PhantomStrength,
    RedundancyConfig,
    SystemConfig,
    TLBMode,
    apply_env_coherence,
    manycore_config,
)


class TestPaperTable1:
    """PAPER_TABLE1 must carry the paper's exact parameters."""

    def test_processor_parameters(self):
        assert PAPER_TABLE1.n_logical == 4
        assert PAPER_TABLE1.core.width == 4
        assert PAPER_TABLE1.core.rob_size == 256
        assert PAPER_TABLE1.core.store_buffer_size == 64

    def test_l1_parameters(self):
        assert PAPER_TABLE1.l1.size_bytes == 64 * 1024
        assert PAPER_TABLE1.l1.assoc == 2
        assert PAPER_TABLE1.l1.load_to_use == 2
        assert PAPER_TABLE1.l1.line_bytes == 64
        assert PAPER_TABLE1.l1.mshrs == 32

    def test_l2_parameters(self):
        assert PAPER_TABLE1.l2.size_bytes == 16 * 1024 * 1024
        assert PAPER_TABLE1.l2.assoc == 8
        assert PAPER_TABLE1.l2.banks == 4
        assert PAPER_TABLE1.l2.hit_latency == 35
        assert PAPER_TABLE1.l2.mshrs == 64

    def test_tlb_parameters(self):
        assert PAPER_TABLE1.tlb.itlb_entries == 128
        assert PAPER_TABLE1.tlb.dtlb_entries == 512
        assert PAPER_TABLE1.tlb.assoc == 2
        assert PAPER_TABLE1.tlb.page_bits == 13  # 8K pages

    def test_memory_latency_60ns_at_4ghz(self):
        assert PAPER_TABLE1.memory.latency == 240


class TestCoreCount:
    def test_nonredundant_and_strict_use_n_logical_cores(self):
        for mode in (Mode.NONREDUNDANT, Mode.STRICT):
            config = DEFAULT_CONFIG.with_redundancy(mode=mode)
            assert config.n_cores == config.n_logical

    def test_reunion_doubles_cores(self):
        config = DEFAULT_CONFIG.with_redundancy(mode=Mode.REUNION)
        assert config.n_cores == 2 * config.n_logical


class TestValidation:
    def test_negative_comparison_latency_rejected(self):
        with pytest.raises(ValueError):
            RedundancyConfig(comparison_latency=-1)

    def test_zero_fingerprint_interval_rejected(self):
        with pytest.raises(ValueError):
            RedundancyConfig(fingerprint_interval=0)

    def test_fingerprint_width_bounds(self):
        with pytest.raises(ValueError):
            RedundancyConfig(fingerprint_bits=2)
        with pytest.raises(ValueError):
            RedundancyConfig(fingerprint_bits=128)

    def test_l1_size_must_divide(self):
        with pytest.raises(ValueError):
            L1Config(size_bytes=1000, assoc=3)

    def test_l2_needs_banks(self):
        with pytest.raises(ValueError):
            L2Config(banks=0)

    def test_core_width_and_rob(self):
        with pytest.raises(ValueError):
            CoreConfig(width=0)
        with pytest.raises(ValueError):
            CoreConfig(width=8, rob_size=4)

    def test_system_needs_a_logical_processor(self):
        with pytest.raises(ValueError, match="at least one logical"):
            SystemConfig(n_logical=0)
        with pytest.raises(ValueError, match="at least one logical"):
            SystemConfig(n_logical=-2)

    def test_line_sizes_must_match_across_levels(self):
        with pytest.raises(ValueError, match="line sizes must match"):
            SystemConfig(l1=L1Config(line_bytes=32), l2=L2Config(line_bytes=64))

    def test_memory_latency_must_be_positive(self):
        with pytest.raises(ValueError, match="latency"):
            MemoryConfig(latency=0)

    def test_l1_set_count_must_be_power_of_two(self):
        # 1536 / (2 * 64) = 12 sets: divisible, but the index function
        # needs a power of two.
        with pytest.raises(ValueError, match="power of two"):
            L1Config(size_bytes=1536, assoc=2)

    def test_l2_bank_count_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            L2Config(banks=3)

    def test_bus_directory_fields_validated(self):
        with pytest.raises(ValueError, match="power of two"):
            BusConfig(dir_banks=3)
        with pytest.raises(ValueError, match="link latency"):
            BusConfig(link_latency=-1)
        with pytest.raises(ValueError, match="weights"):
            BusConfig(wrr_vocal_weight=-1)
        with pytest.raises(ValueError, match="weights"):
            BusConfig(wrr_mute_weight=-2)


class TestCoherenceStyle:
    def test_default_bus_is_snoopy(self):
        assert BusConfig().coherence is CoherenceStyle.SNOOPY

    def test_coherence_lands_in_cache_keys(self):
        """Backend choice changes results, so it must change job keys."""
        from repro.exec.jobs import config_payload

        # Set both fields explicitly: under the REPRO_COHERENCE CI leg
        # DEFAULT_CONFIG may already carry a rewritten bus.
        snoopy = DEFAULT_CONFIG.replace(
            cache_style=CacheStyle.SNOOPY,
            bus=dataclasses.replace(
                DEFAULT_CONFIG.bus, coherence=CoherenceStyle.SNOOPY
            ),
        )
        directory = snoopy.replace(
            bus=dataclasses.replace(snoopy.bus, coherence=CoherenceStyle.DIRECTORY)
        )
        assert config_payload(snoopy) != config_payload(directory)
        assert config_payload(snoopy)["bus"]["coherence"] == "snoopy"
        assert config_payload(directory)["bus"]["coherence"] == "directory"

    def test_apply_env_unset_is_identity(self):
        assert apply_env_coherence(DEFAULT_CONFIG, {}) == DEFAULT_CONFIG

    def test_apply_env_selects_each_backend(self):
        shared = apply_env_coherence(DEFAULT_CONFIG, {"REPRO_COHERENCE": "shared"})
        assert shared.cache_style is CacheStyle.SHARED
        snoopy = apply_env_coherence(DEFAULT_CONFIG, {"REPRO_COHERENCE": "snoopy"})
        assert snoopy.cache_style is CacheStyle.SNOOPY
        assert snoopy.bus.coherence is CoherenceStyle.SNOOPY
        directory = apply_env_coherence(
            DEFAULT_CONFIG, {"REPRO_COHERENCE": "directory"}
        )
        assert directory.cache_style is CacheStyle.SNOOPY
        assert directory.bus.coherence is CoherenceStyle.DIRECTORY

    def test_apply_env_rejects_nonsense(self):
        with pytest.raises(ValueError, match="REPRO_COHERENCE"):
            apply_env_coherence(DEFAULT_CONFIG, {"REPRO_COHERENCE": "telepathy"})

    def test_paper_table1_is_never_env_modified(self):
        assert PAPER_TABLE1.cache_style is CacheStyle.SHARED


class TestManycorePresets:
    def test_core_counts(self):
        assert MANYCORE_8.n_cores == 8
        assert MANYCORE_16.n_cores == 16
        assert MANYCORE_32.n_cores == 32

    def test_presets_ride_the_directory_backend(self):
        for preset in (MANYCORE_8, MANYCORE_16, MANYCORE_32):
            assert preset.cache_style is CacheStyle.SNOOPY
            assert preset.bus.coherence is CoherenceStyle.DIRECTORY
            assert preset.redundancy.mode is Mode.REUNION

    def test_interconnect_is_not_degenerate(self):
        """The stock configs must exercise banking, links and WRR — the
        degenerate settings exist only for the equivalence suite."""
        assert MANYCORE_16.bus.dir_banks > 1
        assert MANYCORE_16.bus.link_latency > 0
        assert MANYCORE_16.bus.wrr_vocal_weight > MANYCORE_16.bus.wrr_mute_weight > 0

    def test_manycore_config_scales_pairs_only(self):
        a, b = manycore_config(2), manycore_config(16)
        assert a.replace(n_logical=16) == b


class TestDerivedConfigs:
    def test_with_redundancy_is_pure(self):
        derived = DEFAULT_CONFIG.with_redundancy(mode=Mode.REUNION, comparison_latency=40)
        assert DEFAULT_CONFIG.redundancy.mode is Mode.NONREDUNDANT
        assert derived.redundancy.comparison_latency == 40
        assert derived.l1 == DEFAULT_CONFIG.l1

    def test_with_tlb(self):
        derived = DEFAULT_CONFIG.with_tlb(mode=TLBMode.SOFTWARE)
        assert derived.tlb.mode is TLBMode.SOFTWARE
        assert DEFAULT_CONFIG.tlb.mode is TLBMode.HARDWARE

    def test_replace(self):
        derived = DEFAULT_CONFIG.replace(consistency=Consistency.SC, n_logical=2)
        assert derived.consistency is Consistency.SC
        assert derived.n_logical == 2

    def test_configs_hashable_for_cache_keys(self):
        """The harness Runner uses SystemConfig as a dict key."""
        a = DEFAULT_CONFIG.with_redundancy(mode=Mode.REUNION)
        b = DEFAULT_CONFIG.with_redundancy(mode=Mode.REUNION)
        assert a == b and hash(a) == hash(b)
        assert {a: 1}[b] == 1

    def test_enums_cover_paper_design_space(self):
        assert {p.value for p in PhantomStrength} == {"null", "shared", "global"}
        assert {m.value for m in Mode} == {"nonredundant", "strict", "reunion"}
        assert {c.value for c in Consistency} == {"tso", "sc"}

    def test_default_config_preserves_ratios(self):
        """The scaled system keeps the paper's qualitative ratios."""
        assert DEFAULT_CONFIG.l2.size_bytes >= 16 * DEFAULT_CONFIG.l1.size_bytes
        assert DEFAULT_CONFIG.l2.hit_latency >= 5 * DEFAULT_CONFIG.l1.load_to_use
        assert DEFAULT_CONFIG.memory.latency >= 3 * DEFAULT_CONFIG.l2.hit_latency
        assert DEFAULT_CONFIG.tlb.dtlb_entries >= DEFAULT_CONFIG.tlb.itlb_entries

    def test_dataclass_replace_on_core(self):
        core = dataclasses.replace(DEFAULT_CONFIG.core, rob_size=256)
        config = dataclasses.replace(DEFAULT_CONFIG, core=core)
        assert config.core.rob_size == 256
