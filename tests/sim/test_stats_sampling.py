"""Tests for statistics collection and the sampling methodology."""

import math

import pytest

from repro.sim.config import DEFAULT_CONFIG, Mode
from repro.sim.sampling import Sample, matched_pair, run_sample
from repro.sim.stats import Stats
from repro.workloads import by_name


class TestStats:
    def test_inc_and_get(self):
        stats = Stats()
        stats.inc("a.b")
        stats.inc("a.b", 2)
        assert stats["a.b"] == 3
        assert stats.get("missing", 7) == 7
        assert "a.b" in stats and "missing" not in stats

    def test_prefix_iteration_and_total(self):
        stats = Stats()
        stats.inc("core0.x", 1)
        stats.inc("core1.x", 2)
        stats.inc("l2.y", 5)
        assert stats.total("core") == 3
        assert [name for name, _ in stats.items("l2.")] == ["l2.y"]

    def test_snapshot_delta(self):
        stats = Stats()
        stats.inc("a", 5)
        snap = stats.snapshot()
        stats.inc("a", 2)
        stats.inc("b", 1)
        delta = stats.delta_since(snap)
        assert delta == {"a": 2, "b": 1}

    def test_report_renders(self):
        stats = Stats()
        stats.inc("alpha", 10)
        stats.set("beta", 2.5)
        report = stats.report()
        assert "alpha" in report and "10" in report and "2.5" in report

    def test_reset(self):
        stats = Stats()
        stats.inc("x")
        stats.reset()
        assert stats["x"] == 0


def make_sample(ipc=1.0, cycles=1000, recoveries=0, tlb=0):
    return Sample(
        cycles=cycles,
        user_instructions=int(ipc * cycles),
        recoveries=recoveries,
        tlb_misses=tlb,
        sync_requests=0,
        serializing=0,
    )


class TestSampleMetrics:
    def test_ipc(self):
        assert make_sample(ipc=2.0).ipc == pytest.approx(2.0)
        assert Sample(0, 0, 0, 0, 0, 0).ipc == 0.0

    def test_rates_per_million(self):
        sample = make_sample(ipc=1.0, cycles=1_000_000, recoveries=5, tlb=2000)
        assert sample.incoherence_per_minstr == pytest.approx(5.0)
        assert sample.tlb_misses_per_minstr == pytest.approx(2000.0)

    def test_zero_instruction_rates(self):
        empty = Sample(100, 0, 1, 1, 0, 0)
        assert empty.incoherence_per_minstr == 0.0
        assert empty.tlb_misses_per_minstr == 0.0


class TestMatchedPair:
    def test_identical_samples_ratio_one(self):
        base = [make_sample(1.0), make_sample(2.0)]
        result = matched_pair(base, base)
        assert result.mean == pytest.approx(1.0)
        assert result.half_interval == pytest.approx(0.0)

    def test_consistent_slowdown(self):
        base = [make_sample(2.0), make_sample(4.0)]
        test = [make_sample(1.0), make_sample(2.0)]
        result = matched_pair(base, test)
        assert result.mean == pytest.approx(0.5)

    def test_interval_reflects_variance(self):
        base = [make_sample(1.0)] * 3
        test = [make_sample(0.8), make_sample(1.0), make_sample(1.2)]
        result = matched_pair(base, test)
        assert result.mean == pytest.approx(1.0)
        assert result.half_interval > 0

    def test_single_sample_has_nan_interval(self):
        result = matched_pair([make_sample(1.0)], [make_sample(1.1)])
        assert math.isnan(result.half_interval)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            matched_pair([make_sample()], [])

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            matched_pair([Sample(10, 0, 0, 0, 0, 0)], [make_sample()])

    def test_str_rendering(self):
        result = matched_pair([make_sample(1.0)] * 2, [make_sample(0.9)] * 2)
        assert "0.900" in str(result)


class TestRunSample:
    def test_measures_only_the_window(self):
        config = DEFAULT_CONFIG.with_redundancy(mode=Mode.NONREDUNDANT)
        workload = by_name("ocean")
        sample = run_sample(config, workload, warmup=300, measure=500, seed=0)
        assert sample.cycles == 500
        assert sample.user_instructions > 0

    def test_deterministic_given_seed(self):
        config = DEFAULT_CONFIG.with_redundancy(mode=Mode.NONREDUNDANT)
        workload = by_name("ocean")
        a = run_sample(config, workload, warmup=200, measure=400, seed=1)
        b = run_sample(config, workload, warmup=200, measure=400, seed=1)
        assert a == b
