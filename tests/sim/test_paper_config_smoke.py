"""Smoke test: the paper's exact Table 1 configuration builds and runs.

PAPER_TABLE1 is two orders of magnitude bigger than the default system
(16 MB L2, 256-entry RUU, 512-entry DTLB); this test only needs to show
the full-size machine assembles in every mode and makes progress — the
long experiments live behind ``REPRO_SCALE=paper``.
"""

import pytest

from repro.sim.cmp import CMPSystem
from repro.sim.config import PAPER_TABLE1, Mode
from repro.workloads import by_name


@pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.STRICT, Mode.REUNION])
def test_paper_size_system_runs(mode):
    config = PAPER_TABLE1.with_redundancy(mode=mode, comparison_latency=10)
    workload = by_name("ocean")
    system = CMPSystem(
        config,
        workload.programs(config.n_logical, 0),
        workload.itlb_schedules(config.n_logical, 0),
    )
    system.run(600)
    assert system.user_instructions() > 0
    assert not system.failed


def test_paper_size_caches_have_paper_geometry():
    config = PAPER_TABLE1.with_redundancy(mode=Mode.REUNION)
    workload = by_name("ocean")
    system = CMPSystem(config, workload.programs(4, 0))
    # 16 MB, 8-way, 64 B lines -> 32768 sets; Reunion doubles banks.
    assert system.controller.cache.n_sets == 16 * 1024 * 1024 // 64 // 8
    assert system.controller.config.banks == 8
    assert len(system.cores) == 8
