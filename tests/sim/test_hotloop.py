"""Equivalence of the SoA hot loop and the object reference loop.

``REPRO_HOTLOOP=soa`` (the default) pre-decodes each program into flat
int tables and rebinds ``OoOCore.step`` to a fused fast path;
``REPRO_HOTLOOP=object`` keeps the original attribute-chasing loop.
Their contract is *bit identity*: same statistics, same fingerprint
comparison sequence, same recoveries, same architectural state — on any
program, under any kernel, execution strategy, or fault plan.  These
tests diff everything observable between the two loops, on curated
scenarios and on Hypothesis-generated random programs with randomized
fault injection.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode, PhantomStrength
from repro.sim.options import SimOptions
from repro.workloads.micro import PointerChase
from tests.core.helpers import SMALL
from tests.pipeline.test_differential_random import random_program
from tests.sim.test_replay_exec import MIXED, _observe

CHASE = PointerChase(nodes=48, chases_per_iteration=6)


def _config(fingerprint_interval: int = 8):
    return SMALL.replace(n_logical=1).with_redundancy(
        mode=Mode.REUNION,
        comparison_latency=10,
        fingerprint_interval=fingerprint_interval,
        phantom=PhantomStrength.GLOBAL,
    )


def _run(
    program, hotloop, *, kernel="event", execution="dual", injector=None, cycles=None
):
    options = SimOptions(hotloop=hotloop, kernel=kernel, execution=execution)
    system = CMPSystem(_config(), [program], options=options)
    if injector is not None:
        interval, seed, target = injector
        FaultInjector(interval=interval, seed=seed, target=target).attach(
            system.cores[1]
        )
    if cycles is None:
        system.run_until_idle(max_cycles=500_000)
    else:
        system.run(cycles)  # non-terminating workloads: fixed horizon
    return system


@pytest.mark.parametrize("kernel", ["naive", "event"])
@pytest.mark.parametrize("execution", ["dual", "replay"])
class TestHotLoopEquivalence:
    """Curated scenarios across the full kernel x execution matrix."""

    def test_mixed_workload(self, kernel, execution):
        program = assemble(MIXED)
        soa = _run(program, "soa", kernel=kernel, execution=execution)
        obj = _run(program, "object", kernel=kernel, execution=execution)
        assert _observe(soa) == _observe(obj)

    def test_memory_bound_workload(self, kernel, execution):
        program = CHASE.programs(1, seed=3)[0]
        soa = _run(program, "soa", kernel=kernel, execution=execution, cycles=30_000)
        obj = _run(
            program, "object", kernel=kernel, execution=execution, cycles=30_000
        )
        assert _observe(soa) == _observe(obj)


@pytest.mark.parametrize("target", ["result", "store_addr", "branch_target"])
def test_fault_recovery_is_loop_independent(target):
    """Injected faults must detect and recover identically under both loops.

    The injector counts *eligible* instructions, so any divergence in
    issue order or re-execution between the loops would shift every
    subsequent injection and show up as a different recovery log.
    """
    program = assemble(MIXED)
    injector = (40, 11, target)
    soa = _run(program, "soa", injector=injector)
    obj = _run(program, "object", injector=injector)
    soa_obs, obj_obs = _observe(soa), _observe(obj)
    assert soa_obs == obj_obs
    assert soa.pairs[0].recoveries > 0  # the plan actually fired


@given(
    program=random_program(),
    fault=st.one_of(
        st.none(),
        st.tuples(
            st.integers(min_value=20, max_value=80),  # interval
            st.integers(min_value=0, max_value=2**16),  # seed
            st.sampled_from(["result", "store_addr", "branch_target"]),
        ),
    ),
)
@settings(max_examples=20, deadline=None)
def test_random_programs_bit_identical(program, fault):
    """Fuzz: random programs and fault plans, diffed loop-vs-loop."""
    soa = _run(program, "soa", injector=fault)
    obj = _run(program, "object", injector=fault)
    assert _observe(soa) == _observe(obj)


class TestHotLoopSelection:
    def test_env_selects_object_loop(self):
        options = SimOptions.from_env({"REPRO_HOTLOOP": "object"})
        assert options.hotloop == "object"
        system = CMPSystem(_config(), [assemble(MIXED)], options=options)
        core = system.cores[0]
        assert core.step.__func__ is type(core).step

    def test_empty_env_value_means_unset(self):
        # A CI matrix leg that doesn't pin the knob exports "".
        assert SimOptions.from_env({"REPRO_HOTLOOP": ""}).hotloop == "soa"

    def test_default_is_soa(self):
        options = SimOptions.from_env({})
        assert options.hotloop == "soa"
        system = CMPSystem(_config(), [assemble(MIXED)], options=options)
        core = system.cores[0]
        assert core.step.__func__ is type(core)._step_soa

    def test_unknown_hotloop_rejected(self):
        with pytest.raises(ValueError, match="hot loop"):
            SimOptions(hotloop="vectorized")
