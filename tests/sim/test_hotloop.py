"""Equivalence of the SoA hot loop and the object reference loop.

``REPRO_HOTLOOP=soa`` (the default) pre-decodes each program into flat
int tables and rebinds ``OoOCore.step`` to a fused fast path;
``REPRO_HOTLOOP=object`` keeps the original attribute-chasing loop.
Their contract is *bit identity*: same statistics, same fingerprint
comparison sequence, same recoveries, same architectural state — on any
program, under any kernel, execution strategy, or fault plan.  These
tests diff everything observable between the two loops, on curated
scenarios and on Hypothesis-generated random programs with randomized
fault injection.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode, PhantomStrength
from repro.sim.options import SimOptions
from repro.workloads.base import hashed_schedule
from repro.workloads.micro import MICRO_BASE, PointerChase
from tests.core.helpers import SMALL
from tests.pipeline.test_differential_random import random_program
from tests.sim.test_replay_exec import MIXED, _observe

CHASE = PointerChase(nodes=48, chases_per_iteration=6)


def _config(fingerprint_interval: int = 8):
    return SMALL.replace(n_logical=1).with_redundancy(
        mode=Mode.REUNION,
        comparison_latency=10,
        fingerprint_interval=fingerprint_interval,
        phantom=PhantomStrength.GLOBAL,
    )


def _run(
    program, hotloop, *, kernel="event", execution="dual", injector=None, cycles=None
):
    options = SimOptions(hotloop=hotloop, kernel=kernel, execution=execution)
    system = CMPSystem(_config(), [program], options=options)
    if injector is not None:
        interval, seed, target = injector
        FaultInjector(interval=interval, seed=seed, target=target).attach(
            system.cores[1]
        )
    if cycles is None:
        system.run_until_idle(max_cycles=500_000)
    else:
        system.run(cycles)  # non-terminating workloads: fixed horizon
    return system


@pytest.mark.parametrize("kernel", ["naive", "event"])
@pytest.mark.parametrize("execution", ["dual", "replay"])
class TestHotLoopEquivalence:
    """Curated scenarios across the full kernel x execution matrix."""

    def test_mixed_workload(self, kernel, execution):
        program = assemble(MIXED)
        soa = _run(program, "soa", kernel=kernel, execution=execution)
        obj = _run(program, "object", kernel=kernel, execution=execution)
        assert _observe(soa) == _observe(obj)

    def test_memory_bound_workload(self, kernel, execution):
        program = CHASE.programs(1, seed=3)[0]
        soa = _run(program, "soa", kernel=kernel, execution=execution, cycles=30_000)
        obj = _run(
            program, "object", kernel=kernel, execution=execution, cycles=30_000
        )
        assert _observe(soa) == _observe(obj)


@pytest.mark.parametrize("target", ["result", "store_addr", "branch_target"])
def test_fault_recovery_is_loop_independent(target):
    """Injected faults must detect and recover identically under both loops.

    The injector counts *eligible* instructions, so any divergence in
    issue order or re-execution between the loops would shift every
    subsequent injection and show up as a different recovery log.
    """
    program = assemble(MIXED)
    injector = (40, 11, target)
    soa = _run(program, "soa", injector=injector)
    obj = _run(program, "object", injector=injector)
    soa_obs, obj_obs = _observe(soa), _observe(obj)
    assert soa_obs == obj_obs
    assert soa.pairs[0].recoveries > 0  # the plan actually fired


@given(
    program=random_program(),
    fault=st.one_of(
        st.none(),
        st.tuples(
            st.integers(min_value=20, max_value=80),  # interval
            st.integers(min_value=0, max_value=2**16),  # seed
            st.sampled_from(["result", "store_addr", "branch_target"]),
        ),
    ),
)
@settings(max_examples=20, deadline=None)
def test_random_programs_bit_identical(program, fault):
    """Fuzz: random programs and fault plans, diffed loop-vs-loop."""
    soa = _run(program, "soa", injector=fault)
    obj = _run(program, "object", injector=fault)
    assert _observe(soa) == _observe(obj)


def _fuzz_program(seed: int):
    """A branchy, store-heavy, TLB-hostile loop for the cold-path fuzz.

    Loads pseudo-random memory words and branches on their low bit, so
    roughly half the conditional branches mispredict (squash path); the
    roving offset strides across a 32 KB footprint — double the SMALL
    config's 16-entry x 1 KB DTLB reach — so loads keep taking software
    TLB walks (injected-handler path); the not-taken arms store, feeding
    the fingerprint store words and the ``store_addr`` fault target.
    """
    rng = random.Random(0xF022 ^ seed)
    words = 4096
    mask = (words * 8 - 1) & ~0x7
    builder = ProgramBuilder(name=f"coldpath-fuzz/{seed}")
    builder.reg(1, MICRO_BASE)  # footprint base
    builder.reg(2, 0)  # roving offset
    builder.reg(3, rng.randrange(1, 1 << 16) | 1)  # odd scramble constant
    builder.label("loop")
    for i in range(rng.randrange(6, 12)):
        builder.add(4, 1, 2)
        builder.load(5, 4)
        builder.alu(Op.XOR, 6, 6, 5)
        builder.alu(Op.MUL, 6, 6, 3)
        builder.alu(Op.ANDI, 7, 6, imm=1)
        skip = f"skip{i}"
        builder.bne(7, 0, skip)
        builder.store(6, 4)
        builder.label(skip)
        builder.addi(2, 2, rng.choice([8, 24, 1032, 2056]))
        builder.alu(Op.ANDI, 2, 2, imm=mask)
    builder.jump("loop")
    program = builder.build()
    program.memory_image.update(
        {MICRO_BASE + i * 8: rng.getrandbits(64) for i in range(words)}
    )
    return program


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_cold_path_fuzz_bit_identical(seed):
    """Seeded fuzz forcing every view-materializing cold path in one run.

    One scenario exercises, simultaneously and on both loops: branch
    mispredicts (squash rollback), synthetic ITLB misses (trap squash +
    injected handler), DTLB misses (software-walk injection), an external
    interrupt replicated mid-run, and mid-interval fault injection on the
    mute with the resulting detections and recoveries.  The sanity
    asserts at the bottom prove each path actually fired — a fuzz that
    silently stopped reaching a cold path would otherwise keep passing on
    vacuous equality.
    """
    rng = random.Random(0x5EED ^ seed)
    program = _fuzz_program(seed)
    itlb = hashed_schedule(rate_per_kinstr=rng.choice([10.0, 25.0]), seed=seed)
    interval = rng.choice([1, 4, 8])
    kernel = rng.choice(["naive", "event"])
    execution = rng.choice(["dual", "replay"])
    interrupt_at = rng.randrange(2_000, 8_000)
    fault = (
        rng.randrange(25, 60),
        rng.randrange(2**16),
        rng.choice(["result", "store_addr", "branch_target"]),
    )
    horizon = 20_000

    def run(hotloop):
        options = SimOptions(hotloop=hotloop, kernel=kernel, execution=execution)
        system = CMPSystem(
            _config(fingerprint_interval=interval), [program], [itlb],
            options=options,
        )
        fault_interval, fault_seed, fault_target = fault
        FaultInjector(
            interval=fault_interval, seed=fault_seed, target=fault_target
        ).attach(system.cores[1])
        system.run(interrupt_at)
        system.post_interrupt(0)
        system.run(horizon - interrupt_at)
        return system

    soa = run("soa")
    obj = run("object")
    assert _observe(soa) == _observe(obj)
    vocal = soa.cores[0]
    assert vocal.mispredicts > 0
    assert vocal.dtlb_misses > 0
    assert vocal.itlb_misses > 0
    assert vocal.interrupts_serviced == 1
    assert soa.pairs[0].recoveries > 0


class TestHotLoopSelection:
    def test_env_selects_object_loop(self):
        options = SimOptions.from_env({"REPRO_HOTLOOP": "object"})
        assert options.hotloop == "object"
        system = CMPSystem(_config(), [assemble(MIXED)], options=options)
        core = system.cores[0]
        assert core.step.__func__ is type(core).step

    def test_empty_env_value_means_unset(self):
        # A CI matrix leg that doesn't pin the knob exports "".
        assert SimOptions.from_env({"REPRO_HOTLOOP": ""}).hotloop == "soa"

    def test_default_is_soa(self):
        options = SimOptions.from_env({})
        assert options.hotloop == "soa"
        system = CMPSystem(_config(), [assemble(MIXED)], options=options)
        core = system.cores[0]
        assert core.step.__func__ is type(core)._step_soa

    def test_unknown_hotloop_rejected(self):
        with pytest.raises(ValueError, match="hot loop"):
            SimOptions(hotloop="vectorized")
