"""Equivalence of replay execution and full dual execution.

The replay fast path's contract is *bit identity*: a system built with
``execution="replay"`` must produce exactly the same statistics,
fingerprint-comparison sequence, recovery log, and architectural
register state as ``execution="dual"``.  Replay is a mirror window (see
``repro.core.mirror``): from reset until the first asymmetry trigger
the pair is a provably symmetric automaton, so only the vocal is
stepped — hashing its fingerprints exactly as dual execution would —
and the mute's state is materialized at window exit, after which the
pair permanently falls back to full dual execution.  These tests run
the same scenario under both execution modes (and both simulation
kernels) and diff everything observable.
"""

from __future__ import annotations

import pytest

from repro.core.check_stage import CheckGate
from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode, PhantomStrength
from repro.workloads.micro import PointerChase
from tests.core.helpers import SMALL

#: Mixed compute: dependent ALU work, stores, loads, a serializing
#: atomic, branches — every kind of update word a fingerprint hashes.
MIXED = """
    movi r1, 40
    movi r2, 0
    movi r3, 0x400
    movi r6, 0x900
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    atomic r5, [r6], r1
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

#: Memory-latency dominated: a dependent load chain that misses.
CHASE = PointerChase(nodes=64, chases_per_iteration=8)

#: Pure compute: no loads, stores or serializing instructions until the
#: final halt, so the mirror window covers essentially the whole run.
COMPUTE = """
    movi r1, 300
    movi r2, 1
    movi r3, 7
loop:
    add r2, r2, r3
    add r4, r2, r1
    add r3, r3, r4
    add r5, r3, r2
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def _config(phantom: PhantomStrength = PhantomStrength.GLOBAL, n_logical: int = 1):
    return SMALL.replace(n_logical=n_logical).with_redundancy(
        mode=Mode.REUNION,
        comparison_latency=10,
        fingerprint_interval=8,
        phantom=phantom,
    )


def _observe(system: CMPSystem) -> dict:
    """Everything the equivalence contract covers, in one comparable dict."""
    observation = {
        "now": system.now,
        "stats": dict(system.collect_stats().snapshot()),
        "arf": [
            [core.arf.read(reg) for reg in range(8)] for core in system.cores
        ],
        "user_retired": [core.user_retired for core in system.cores],
        "cycles": [core.cycles for core in system.cores],
    }
    for index, core in enumerate(system.cores):
        gate = core.gate
        if isinstance(gate, CheckGate):
            observation[f"gate{index}.intervals_closed"] = gate.intervals_closed
            observation[f"gate{index}.fingerprints_compared"] = gate.fingerprints_compared
    observation["recovery_log"] = [pair.recovery_log for pair in system.pairs]
    return observation


def _run_both(scenario) -> tuple[dict, dict, CMPSystem, CMPSystem]:
    """Run ``scenario(execution)`` under both modes; return observations."""
    dual = scenario("dual")
    replay = scenario("replay")
    return _observe(dual), _observe(replay), dual, replay


@pytest.mark.parametrize("kernel", ["naive", "event"])
class TestReplayEquivalence:
    def test_mixed_workload(self, kernel):
        def scenario(execution):
            system = CMPSystem(
                _config(), [assemble(MIXED)], kernel=kernel, execution=execution
            )
            system.run_until_idle(max_cycles=500_000)
            return system

        dual, replay, _, replay_system = _run_both(scenario)
        assert dual == replay
        # The fast path must actually engage, or this test proves nothing:
        # the mirror window covers at least the loadless warmup prefix,
        # then the first load fetch drops the pair to dual for good.
        assert replay_system.pairs[0].mirror_cycles > 0
        assert not replay_system.pairs[0].replay_enabled

    def test_compute_bound_mirror_window(self, kernel):
        """A loadless loop: the mirror window covers nearly the whole run."""

        def scenario(execution):
            system = CMPSystem(
                _config(), [assemble(COMPUTE)], kernel=kernel, execution=execution
            )
            system.run_until_idle(max_cycles=500_000)
            return system

        dual, replay, _, replay_system = _run_both(scenario)
        assert dual == replay
        pair = replay_system.pairs[0]
        assert not pair._mirror_active  # exited at the halt fetch
        assert pair.mirror_cycles > replay_system.now // 2

    def test_observation_mid_mirror_window(self, kernel):
        """Stats read while the window is still open must be identical."""

        def scenario(execution):
            system = CMPSystem(
                _config(), [assemble(COMPUTE)], kernel=kernel, execution=execution
            )
            system.run(400)
            return system

        dual, replay, _, replay_system = _run_both(scenario)
        assert dual == replay
        assert replay_system.pairs[0]._mirror_active

    def test_memory_bound_windows(self, kernel):
        def scenario(execution):
            system = CMPSystem(
                _config(), CHASE.programs(1, seed=0), kernel=kernel,
                execution=execution,
            )
            system.run(1_500)  # warmup
            system.run(2_500)  # measure
            return system

        dual, replay, _, replay_system = _run_both(scenario)
        assert dual == replay
        # Memory-bound from the first iteration: the window exits at the
        # first load fetch, after which replay *is* dual execution — the
        # fast path costs nothing on its worst-case workload.
        assert replay_system.pairs[0].mirror_cycles > 0
        assert not replay_system.pairs[0].replay_enabled

    #: Cold loads of preloaded data with null phantom requests: the mute's
    #: non-coherent fills observe stale values (Figure 1's incoherence).
    INCOHERENT = """
        .word 0x800 3
        .word 0x840 5
        movi r1, 0x800
        load r2, [r1]
        load r3, [r1+64]
        mul r4, r2, r3
        beq r4, r0, dead
        addi r5, r4, 1
    dead:
        halt
    """

    def test_input_incoherence_detected_identically(self, kernel):
        """No phantom requests: the mute observes incoherent load values.

        Replay must reach the same divergence decisions as the hashed
        fingerprints — same recovery count, same recovery cycles.
        """

        def scenario(execution):
            system = CMPSystem(
                _config(phantom=PhantomStrength.NULL),
                [assemble(self.INCOHERENT)],
                kernel=kernel,
                execution=execution,
            )
            system.run_until_idle(max_cycles=500_000)
            return system

        dual, replay, dual_system, _ = _run_both(scenario)
        assert dual == replay
        assert dual_system.recoveries() > 0

    def test_interrupt_service_identical(self, kernel):
        def scenario(execution):
            system = CMPSystem(
                _config(), [assemble(MIXED)], kernel=kernel, execution=execution
            )
            system.run(600)
            system.post_interrupt(0)
            system.run_until_idle(max_cycles=500_000)
            return system

        dual, replay, dual_system, _ = _run_both(scenario)
        assert dual == replay
        assert dual_system.cores[0].interrupts_serviced >= 1


@pytest.mark.parametrize("kernel", ["naive", "event"])
class TestFaultInjectionUnderReplay:
    """A fault-armed pair must fall back to dual and detect the upset."""

    def test_single_upset_recovery_identical(self, kernel):
        def scenario(execution):
            system = CMPSystem(
                _config(), [assemble(MIXED)], kernel=kernel, execution=execution
            )
            injector = FaultInjector(seed=7)
            injector.attach(system.cores[1])  # the mute
            injector.inject_once(after=40)
            system.run_until_idle(max_cycles=500_000)
            return system

        dual, replay, dual_system, replay_system = _run_both(scenario)
        assert dual == replay
        assert dual_system.recoveries() >= 1
        # Attaching the injector disabled the fast path for good.
        assert not replay_system.pairs[0].replay_enabled

    def test_periodic_upsets_identical(self, kernel):
        def scenario(execution):
            system = CMPSystem(
                _config(), [assemble(MIXED)], kernel=kernel, execution=execution
            )
            injector = FaultInjector(interval=60, seed=3)
            injector.attach(system.cores[1])
            system.run_until_idle(max_cycles=500_000)
            return system

        dual, replay, dual_system, _ = _run_both(scenario)
        assert dual == replay
        assert dual_system.recoveries() >= 2


class TestReplayScope:
    """Window arming and exit triggers behave as specified."""

    def test_multi_pair_mirror_windows(self):
        """Every pair of a many-pair system arms — and stays identical.

        In-window a mirrored pair touches no shared structure at all, so
        skipping each mute is invisible to the other pairs under any
        coherence backend; each pair falls back to dual at its own first
        trigger.
        """
        system = CMPSystem(
            _config(n_logical=2), [assemble(MIXED)] * 2, execution="replay"
        )
        assert all(pair.replay_enabled for pair in system.pairs)
        system.run_until_idle(max_cycles=500_000)
        assert all(pair.mirror_cycles > 0 for pair in system.pairs)
        assert all(not pair.replay_enabled for pair in system.pairs)
        reference = CMPSystem(
            _config(n_logical=2), [assemble(MIXED)] * 2, execution="dual"
        )
        reference.run_until_idle(max_cycles=500_000)
        assert _observe(reference) == _observe(system)

    @pytest.mark.parametrize(
        "preset_name", ["MANYCORE_8", "MANYCORE_16", "MANYCORE_32"]
    )
    def test_manycore_presets_open_mirror_windows(self, preset_name):
        """Mirror windows open on every pair of the stock MANYCORE presets.

        The presets run the directory backend; the windows must still
        arm per-pair and the full system must stay bit-identical to
        dual execution.
        """
        from repro import sim as sim_presets

        preset = getattr(sim_presets, preset_name)
        programs = [assemble(COMPUTE)] * preset.n_logical
        replay = CMPSystem(preset, programs, execution="replay")
        assert all(pair.replay_enabled for pair in replay.pairs)
        replay.run_until_idle(max_cycles=500_000)
        assert all(pair.mirror_cycles > 0 for pair in replay.pairs)
        dual = CMPSystem(preset, programs, execution="dual")
        dual.run_until_idle(max_cycles=500_000)
        assert _observe(dual) == _observe(replay)

    def test_decouple_disables_replay(self):
        system = CMPSystem(_config(), [assemble(COMPUTE)], execution="replay")
        system.run(600)
        assert system.pairs[0].replay_enabled
        pair = system.pairs[0]
        system.decouple(0, assemble(COMPUTE))
        assert not pair.replay_enabled

    def test_mid_run_fault_attach_disables(self):
        system = CMPSystem(_config(), [assemble(COMPUTE)], execution="replay")
        system.run(400)
        assert system.pairs[0].replay_enabled
        FaultInjector(seed=1).attach(system.cores[1])
        system.run(50)
        assert not system.pairs[0].replay_enabled


class TestExecutionSelection:
    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "dual")
        system = CMPSystem(_config(), [assemble(MIXED)])
        assert system.execution == "dual"
        assert not system.pairs[0].replay_enabled
        monkeypatch.setenv("REPRO_EXEC", "replay")
        system = CMPSystem(_config(), [assemble(MIXED)])
        assert system.execution == "replay"
        assert system.pairs[0].replay_enabled

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "replay")
        system = CMPSystem(_config(), [assemble(MIXED)], execution="dual")
        assert system.execution == "dual"
        assert not system.pairs[0].replay_enabled

    def test_unknown_execution_rejected(self):
        with pytest.raises(ValueError):
            CMPSystem(_config(), [assemble(MIXED)], execution="turbo")
