"""Interrupt replication and single-step recovery under the event kernel.

The cycle-skipping kernel is the default, and the replay fast path adds
a second layer of skipped work (mirror windows) on top of it — so the
two pair-level protocols with the most intricate timing, external
interrupts (Section 4.3) and the single-step re-execution protocol
(Section 4.2), get direct coverage here under every kernel/execution
combination rather than relying on the naive kernel alone.
"""

from __future__ import annotations

import pytest

from repro.core.pair import PairState, default_interrupt_handler
from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode, PhantomStrength
from tests.core.helpers import SMALL

#: Loadless loop: the replay fast path keeps its mirror window open for
#: essentially the whole run, so an interrupt posted mid-run lands while
#: the mute core is passive.
COMPUTE = """
    movi r1, 800
    movi r2, 1
    movi r3, 7
loop:
    add r2, r2, r3
    add r4, r2, r1
    add r3, r3, r4
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

#: Cold loads of preloaded data followed by an atomic and more work: with
#: null phantom requests the mute's fills observe stale values, forcing a
#: phase-1 recovery; the atomic afterwards is the synchronizing access
#: through which single-step mode makes forward progress and exits.
INCOHERENT_THEN_SYNC = """
    .word 0x800 3
    .word 0x840 5
    movi r1, 0x800
    load r2, [r1]
    load r3, [r1+64]
    mul r4, r2, r3
    movi r6, 0x900
    atomic r5, [r6], r2
    addi r7, r4, 1
    add r7, r7, r5
    halt
"""


def _config(phantom: PhantomStrength = PhantomStrength.GLOBAL):
    return SMALL.replace(n_logical=1).with_redundancy(
        mode=Mode.REUNION,
        comparison_latency=10,
        fingerprint_interval=8,
        phantom=phantom,
    )


def _vocal_state(system: CMPSystem) -> dict:
    vocal = system.vocal_cores[0]
    return {
        "arf": [vocal.arf.read(reg) for reg in range(8)],
        "user_retired": vocal.user_retired,
        "interrupts_serviced": vocal.interrupts_serviced,
        "injected_retired": vocal.injected_retired,
        "recovery_log": list(system.pairs[0].recovery_log),
        "now": system.now,
    }


@pytest.mark.parametrize("execution", ["dual", "replay"])
class TestPostInterruptEventKernel:
    def test_interrupt_mid_mirror_window(self, execution):
        """Posting an interrupt while the mute is passive must end the
        window: the handler is scheduled on two *real* cores and its
        loads would break the symmetry argument anyway."""
        system = CMPSystem(
            _config(), [assemble(COMPUTE)], kernel="event", execution=execution
        )
        system.run(300)
        pair = system.pairs[0]
        if execution == "replay":
            assert pair._mirror_active
        target = pair.post_interrupt()
        assert not pair._mirror_active
        # The chosen boundary is beyond both cores' retirement point.
        assert target > max(core.user_retired for core in system.cores)
        system.run_until_idle(max_cycles=500_000)
        vocal, mute = system.cores
        assert vocal.interrupts_serviced == 1
        assert mute.interrupts_serviced == 1
        assert vocal.injected_retired == len(default_interrupt_handler())
        assert mute.injected_retired == vocal.injected_retired
        assert target <= vocal.user_retired
        assert system.recoveries() == 0

    def test_interrupt_timing_matches_naive_kernel(self, execution):
        """The event kernel must service the replicated interrupt at the
        same cycle and program point as per-cycle simulation."""

        def scenario(kernel):
            system = CMPSystem(
                _config(), [assemble(COMPUTE)], kernel=kernel, execution=execution
            )
            system.run(300)
            system.post_interrupt(0)
            system.run_until_idle(max_cycles=500_000)
            return system

        assert _vocal_state(scenario("event")) == _vocal_state(scenario("naive"))

    def test_interrupt_preserves_program_results(self, execution):
        golden = golden_run(assemble(COMPUTE))
        system = CMPSystem(
            _config(), [assemble(COMPUTE)], kernel="event", execution=execution
        )
        system.run(300)
        system.post_interrupt(0)
        system.run_until_idle(max_cycles=500_000)
        vocal = system.vocal_cores[0]
        for reg in range(8):
            assert vocal.arf.read(reg) == golden.registers.read(reg)
        assert vocal.user_retired == golden.retired
        assert vocal.arf == system.cores[1].arf


@pytest.mark.parametrize("execution", ["dual", "replay"])
class TestSingleStepRecoveryEventKernel:
    def _run_to_recovery(self, execution) -> CMPSystem:
        system = CMPSystem(
            _config(phantom=PhantomStrength.NULL),
            [assemble(INCOHERENT_THEN_SYNC)],
            kernel="event",
            execution=execution,
        )
        pair = system.pairs[0]
        for _ in range(2_000):
            system.run(5)
            if pair.state is PairState.SINGLE_STEP:
                break
        return system

    def test_enters_and_exits_single_step(self, execution):
        system = self._run_to_recovery(execution)
        pair = system.pairs[0]
        assert pair.state is PairState.SINGLE_STEP
        # Both cores (and their gates) are in one-instruction-interval mode.
        for core in system.cores:
            assert core.single_step
            assert core.gate.single_step
        system.run_until_idle(max_cycles=500_000)
        # Forward progress through the synchronizing atomic released the
        # pair back to normal pipelined execution before the halt.
        assert pair.state is PairState.NORMAL
        assert pair.phase == 0
        for core in system.cores:
            assert not core.single_step
            assert not core.gate.single_step

    def test_recovery_restores_correct_results(self, execution):
        """Phase-1 rollback + single-step must converge on the coherent
        (golden-interpreter) values despite the mute's stale fills."""
        golden = golden_run(assemble(INCOHERENT_THEN_SYNC))
        system = CMPSystem(
            _config(phantom=PhantomStrength.NULL),
            [assemble(INCOHERENT_THEN_SYNC)],
            kernel="event",
            execution=execution,
        )
        system.run_until_idle(max_cycles=500_000)
        pair = system.pairs[0]
        assert pair.recoveries >= 1
        assert not pair.failed
        assert any(kind == "phase1" for _, kind in pair.recovery_log)
        vocal = system.vocal_cores[0]
        for reg in range(8):
            assert vocal.arf.read(reg) == golden.registers.read(reg)
        assert vocal.arf == system.cores[1].arf

    def test_recovery_timing_matches_naive_kernel(self, execution):
        """Cycle-skipping may not move a recovery: same recovery log
        (cycle + phase), same end state as the per-cycle kernel."""

        def scenario(kernel):
            system = CMPSystem(
                _config(phantom=PhantomStrength.NULL),
                [assemble(INCOHERENT_THEN_SYNC)],
                kernel=kernel,
                execution=execution,
            )
            system.run_until_idle(max_cycles=500_000)
            return system

        event, naive = scenario("event"), scenario("naive")
        assert _vocal_state(event) == _vocal_state(naive)
        assert event.pairs[0].recoveries == naive.pairs[0].recoveries
