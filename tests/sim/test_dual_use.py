"""Tests for dual-use reconfiguration: redundant <-> independent cores.

The paper's introduction: "Ideally, a single design can provide a
dual-use capability by supporting both redundant and non-redundant
execution."  These tests split a running Reunion pair into two
independent logical processors and re-form it, checking architectural
correctness across both transitions.
"""

import pytest

from repro.core.faults import FaultInjector
from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.config import Mode
from tests.core.helpers import SHARED_SMALL, build

FIRST = """
    movi r1, 300
    movi r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

SECOND = """
    .word 0x7000 5
    movi r1, 0x7000
    load r2, [r1]
    addi r3, r2, 100
    store r3, [r1+8]
    halt
"""


class TestDecouple:
    def test_both_programs_complete_correctly(self):
        system = build([FIRST], mode=Mode.REUNION)
        system.run(100)  # pair makes some progress redundantly
        promoted = system.decouple(0, assemble(SECOND))
        system.run_until_idle(max_cycles=500_000)

        golden_first = golden_run(assemble(FIRST)).registers
        golden_second = golden_run(assemble(SECOND)).registers
        original = system.vocal_cores[0]
        assert original.arf.read(2) == golden_first.read(2)
        assert promoted.arf.read(3) == golden_second.read(3)

    def test_promoted_core_joins_coherence(self):
        # Pinned: asserts against the shared backend's directory
        # bookkeeping.  test_directory_backend.py::test_dual_use_works_
        # on_directory covers the same transition on the new backend.
        system = build([FIRST], mode=Mode.REUNION, config=SHARED_SMALL)
        system.run(100)
        promoted = system.decouple(0, assemble(SECOND))
        system.run_until_idle(max_cycles=500_000)
        # Its store is globally visible now (it is a vocal core).
        line = promoted.port.l1.lookup(0x7008 >> 6)
        assert line is not None and line.data[1] == 105
        entry = system.controller.directory.peek(0x7008 >> 6)
        assert entry is not None and entry.owner == promoted.core_id

    def test_no_pair_left_behind(self):
        system = build([FIRST], mode=Mode.REUNION)
        system.run(100)
        system.decouple(0, assemble(SECOND))
        assert not system.pairs
        assert len(system.vocal_cores) == 2
        with pytest.raises(KeyError):
            system._pair_for(0)

    def test_user_instruction_metric_counts_both(self):
        system = build([FIRST], mode=Mode.REUNION)
        system.run(100)
        before = system.user_instructions()
        system.decouple(0, assemble(SECOND))
        system.run_until_idle(max_cycles=500_000)
        assert system.user_instructions() > before


class TestRecouple:
    def test_redundancy_resumes_and_detects_faults(self):
        system = build([FIRST], mode=Mode.REUNION)
        system.run(100)
        promoted = system.decouple(0, assemble(SECOND))
        # Let the promoted core finish its independent work.
        while not promoted.idle and system.now < 200_000:
            system.step()

        pair = system.couple(0, promoted)
        assert system.pairs == [pair]
        # Inject an upset after re-coupling: detection must work again.
        injector = FaultInjector(seed=3)
        injector.attach(promoted)  # now the mute
        injector.inject_once(after=20)
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert len(injector.records) == 1
        assert pair.recoveries >= 1
        golden = golden_run(assemble(FIRST)).registers
        assert system.vocal_cores[0].arf.read(2) == golden.read(2)

    def test_recoupled_results_correct_without_faults(self):
        system = build([FIRST], mode=Mode.REUNION)
        system.run(80)
        promoted = system.decouple(0, assemble(SECOND))
        system.run(50)
        system.couple(0, promoted)
        system.run_until_idle(max_cycles=500_000)
        golden = golden_run(assemble(FIRST)).registers
        vocal = system.vocal_cores[0]
        assert vocal.arf.read(2) == golden.read(2)
        assert vocal.arf == promoted.arf  # mute agrees again

    def test_cannot_couple_vocal_with_itself(self):
        system = build([FIRST], mode=Mode.REUNION)
        system.run(50)
        with pytest.raises(ValueError):
            system.couple(0, system.vocal_cores[0])
