"""Smoke tests for the figure/table drivers at tiny scale.

These verify plumbing (workload coverage, result structure, rendering),
not shapes — the benchmarks assert shapes at real scale.
"""

import pytest

from repro.harness.fig5 import run_fig5
from repro.harness.fig6 import run_fig6
from repro.harness.fig7 import run_fig7a, run_fig7b, run_sc_comparison
from repro.harness.runs import QUICK, Runner, Scale
from repro.harness.table3 import run_table3
from repro.sim.config import Mode

TINY = Scale("tiny", warmup=150, measure=300, seeds=(0,), config=QUICK.config)


@pytest.fixture(scope="module")
def runner():
    return Runner(TINY)


class TestFig5:
    def test_covers_all_workloads(self, runner):
        result = run_fig5(runner=runner)
        assert len(result.rows) == 11
        assert {row[1] for row in result.rows} == {"Web", "OLTP", "DSS", "Scientific"}
        rendered = result.render()
        assert "Figure 5" in rendered and "Reunion" in rendered

    def test_averages(self, runner):
        result = run_fig5(runner=runner)
        averages = result.averages(2)
        assert set(averages) == {"Web", "OLTP", "DSS", "Scientific"}
        assert 0 < result.commercial_average(3) <= 1.5


class TestFig6:
    def test_strict_panel(self, runner):
        result = run_fig6(
            Mode.STRICT,
            runner=runner,
            latencies=(0, 20),
            representatives={"OLTP": ["DB2 OLTP"]},
        )
        assert result.latencies == (0, 20)
        assert list(result.series) == ["OLTP"]
        assert len(result.series["OLTP"]) == 2
        assert "Figure 6(a)" in result.render()

    def test_reunion_panel_renders_b(self, runner):
        result = run_fig6(
            Mode.REUNION,
            runner=runner,
            latencies=(10,),
            representatives={"Web": ["Zeus"]},
        )
        assert "Figure 6(b)" in result.render()

    def test_rejects_nonredundant(self, runner):
        with pytest.raises(ValueError):
            run_fig6(Mode.NONREDUNDANT, runner=runner)


class TestTable3:
    def test_rows_and_lookup(self, runner):
        result = run_table3(runner=runner)
        assert len(result.rows) == 11
        rates = result.row("Apache")
        assert len(rates) == 4
        with pytest.raises(KeyError):
            result.row("nope")
        assert "Table 3" in result.render()


class TestFig7:
    def test_fig7a(self, runner):
        result = run_fig7a(runner=runner)
        assert len(result.rows) == 11
        assert len(result.row("ocean")) == 3
        assert "7(a)" in result.render()

    def test_fig7b(self, runner):
        result = run_fig7b(runner=runner, latencies=(0, 20), workload_names=["Zeus"])
        assert len(result.hardware) == len(result.software) == 2
        assert "7(b)" in result.render()

    def test_sc_comparison(self, runner):
        result = run_sc_comparison(runner=runner, latencies=(10,), workload_names=["Zeus"])
        assert len(result.tso) == len(result.sc) == 1
        assert "TSO" in result.render()
