"""Frontier sweep: ordering checks, report shape, and a tiny end-to-end run."""

import json

import pytest

from repro.harness.frontier import FrontierPoint, FrontierResult, run_frontier
from repro.harness.runs import QUICK, Runner, Scale

TINY = Scale("tiny", warmup=150, measure=300, seeds=(0,), config=QUICK.config)


def _point(policy, coverage, workload="compute-kernel", trials=20, **kwargs):
    defaults = dict(
        ipc=1.0,
        coverage_interval=(max(coverage - 0.1, 0.0), min(coverage + 0.1, 1.0)),
        coverage_trials=trials,
        sdc=2,
        sdc_unchecked=1,
        injections=48,
    )
    defaults.update(kwargs)
    return FrontierPoint(policy=policy, workload=workload, coverage=coverage, **defaults)


def _result(points):
    return FrontierResult(scale_name="tiny", seed=0, points=tuple(points))


class TestCheckOrdering:
    def test_holds_on_a_monotone_ladder(self):
        result = _result(
            [
                _point("full", 1.0),
                _point("little-mute:2", 1.0),
                _point("interval-sampled:0.5", 0.6),
                _point("unprotected", 0.0),
            ]
        )
        assert result.check_ordering() == []

    def test_flags_sampled_above_full(self):
        result = _result(
            [_point("full", 0.5), _point("interval-sampled:0.5", 0.8)]
        )
        problems = result.check_ordering()
        assert len(problems) == 1
        assert "full" in problems[0] and "interval-sampled:0.5" in problems[0]

    def test_flags_unprotected_above_sampled(self):
        result = _result(
            [
                _point("full", 1.0),
                _point("interval-sampled:0.5", 0.2),
                _point("unprotected", 0.4),
            ]
        )
        assert len(result.check_ordering()) == 1

    def test_flags_missing_strict_dominance(self):
        # Equality is a violation: unprotected has no detection
        # mechanism, so full matching it means the sweep saw nothing.
        result = _result([_point("full", 0.0), _point("unprotected", 0.0)])
        problems = result.check_ordering()
        assert any("strictly dominate" in problem for problem in problems)

    def test_dominance_needs_consequential_trials(self):
        # With zero coverage trials there is nothing to dominate.
        result = _result(
            [
                _point("full", 0.0, trials=0),
                _point("unprotected", 0.0, trials=0),
            ]
        )
        assert result.check_ordering() == []

    def test_workloads_checked_independently(self):
        result = _result(
            [
                _point("full", 1.0, workload="a"),
                _point("unprotected", 0.0, workload="a"),
                _point("full", 0.3, workload="b"),
                _point("unprotected", 0.7, workload="b"),
            ]
        )
        problems = result.check_ordering()
        assert len(problems) == 2  # ladder + dominance, both on b
        assert all(problem.startswith("b:") for problem in problems)

    def test_other_policies_stay_off_the_ladder(self):
        # dynamic / little-mute coverage is workload-dependent; only the
        # structural full >= sampled >= unprotected chain is asserted.
        result = _result(
            [
                _point("full", 1.0),
                _point("dynamic:8,2,16", 0.1),
                _point("little-mute:2", 0.9),
                _point("unprotected", 0.0),
            ]
        )
        assert result.check_ordering() == []


class TestReportShape:
    def test_point_lookup(self):
        result = _result([_point("full", 1.0)])
        assert result.point("full", "compute-kernel").coverage == 1.0
        with pytest.raises(KeyError):
            result.point("full", "pointer-chase")

    def test_payload_schema(self):
        result = _result([_point("full", 1.0), _point("unprotected", 0.0)])
        payload = result.payload()
        assert payload["schema"] == 1
        assert payload["kind"] == "frontier"
        assert len(payload["points"]) == 2
        point = payload["points"][0]
        assert point["coverage"]["trials"] == 20
        assert point["sdc"] == {"total": 2, "unchecked": 1}

    def test_write_round_trips(self, tmp_path):
        result = _result([_point("full", 1.0)])
        path = tmp_path / "frontier.json"
        result.write(path)
        assert json.loads(path.read_text()) == result.payload()

    def test_render_mentions_every_policy(self):
        result = _result(
            [_point("full", 1.0), _point("interval-sampled:0.5", 0.6)]
        )
        rendered = result.render()
        assert "full" in rendered and "interval-sampled:0.5" in rendered
        assert "Protection frontier" in rendered


class TestTinySweep:
    def test_end_to_end(self, tmp_path):
        result = run_frontier(
            scale=TINY,
            policies=("full", "unprotected"),
            workload_names=("compute-kernel",),
            injections=8,
            runner=Runner(TINY),
        )
        assert len(result.points) == 2
        full = result.point("full", "compute-kernel")
        bare = result.point("unprotected", "compute-kernel")
        assert full.ipc > 0 and bare.ipc > 0
        # The structural frontier: full detects, unprotected cannot.
        assert bare.coverage == 0.0
        assert result.check_ordering() == []
        result.write(tmp_path / "tiny.json")
        assert json.loads((tmp_path / "tiny.json").read_text())["scale"] == "tiny"
