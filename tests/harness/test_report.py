"""Tests for report rendering and the experiment runner."""

from repro.harness.report import render_series, render_table
from repro.harness.runs import QUICK, Runner, Scale, category_average, current_scale
from repro.sim.config import DEFAULT_CONFIG, CacheStyle, Mode
from repro.workloads import by_name, suite


class TestRenderTable:
    def test_basic_table(self):
        out = render_table(
            "Title", ["A", "B"], [["x", 1.23456], ["yy", 2.0]], note="footnote"
        )
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "A" in lines[2] and "B" in lines[2]
        assert "1.235" in out  # floats rendered to 3 places
        assert out.endswith("footnote")

    def test_alignment(self):
        out = render_table("T", ["name", "v"], [["long-name", 1.0], ["x", 22.0]])
        rows = out.splitlines()[4:]
        # First column left-aligned, numeric column right-aligned.
        assert rows[0].startswith("long-name")
        assert rows[1].startswith("x ")

    def test_render_series(self):
        out = render_series(
            "S", "x", [0, 10], {"a": [1.0, 0.9], "b": [1.0, 0.8]}
        )
        assert "0.900" in out and "0.800" in out
        assert out.splitlines()[2].split()[:3] == ["x", "a", "b"]


class TestScale:
    def test_current_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "quick"

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "standard")
        assert current_scale().name == "standard"

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        import pytest

        with pytest.raises(ValueError):
            current_scale()


# Pinned to the shared-L2 substrate: the normalized-IPC shape bound
# below is calibrated for the paper's artifact configuration, and a
# 400-cycle window is far too noisy for it on the bus/directory
# backends the REPRO_COHERENCE CI leg swaps in.
TINY = Scale(
    "tiny",
    warmup=200,
    measure=400,
    seeds=(0,),
    config=QUICK.config.replace(cache_style=CacheStyle.SHARED),
)


class TestRunner:
    def test_sample_memoized(self):
        runner = Runner(TINY)
        config = TINY.config.with_redundancy(mode=Mode.NONREDUNDANT)
        workload = by_name("ocean")
        first = runner.sample(config, workload, 0)
        second = runner.sample(config, workload, 0)
        assert first is second  # cached object, not re-simulated

    def test_normalized_ipc_of_baseline_is_one(self):
        runner = Runner(TINY)
        config = TINY.config.with_redundancy(mode=Mode.NONREDUNDANT)
        assert runner.normalized_ipc(config, by_name("ocean")) == 1.0

    def test_normalized_ipc_reunion_below_one_plus_noise(self):
        runner = Runner(TINY)
        config = TINY.config.with_redundancy(mode=Mode.REUNION, comparison_latency=10)
        value = runner.normalized_ipc(config, by_name("ocean"))
        assert 0.3 < value < 1.1


class TestCategoryAverage:
    def test_averages_by_class(self):
        workloads = suite()
        values = {w.name: (1.0 if w.category == "Web" else 0.0) for w in workloads}
        assert category_average(values, workloads, "Web") == 1.0
        assert category_average(values, workloads, "OLTP") == 0.0
