"""Benchmark: Figure 7(a) — performance by phantom request strength.

Shape criteria: global phantom requests perform close to the Figure 5
Reunion result; shared and null suffer from recovery costs, with null at
or below shared everywhere.
"""

from repro.harness.fig7 import run_fig7a


def test_fig7a(benchmark, runner):
    result = benchmark.pedantic(
        lambda: run_fig7a(runner=runner), rounds=1, iterations=1
    )
    print()
    print(result.render())

    for name, _category, global_ipc, shared_ipc, null_ipc in result.rows:
        # Tolerance note: scaled-down scientific kernels are L2-resident,
        # so their shared-phantom replies are usually coherent and shared
        # can tie global within noise (the paper's giant working sets
        # keep them well apart).
        assert global_ipc >= shared_ipc - 0.06, f"{name}: global must win"
        assert shared_ipc >= null_ipc - 0.05, f"{name}: shared >= null"
        assert global_ipc > 0.6, f"{name}: global phantom implausibly slow"

    # Null phantom is a severe penalty somewhere (the paper: severe
    # impact for all workloads; we require it on the suite average).
    avg_global = sum(r[2] for r in result.rows) / len(result.rows)
    avg_null = sum(r[4] for r in result.rows) / len(result.rows)
    assert avg_null < avg_global - 0.10
