"""Shared benchmark fixtures.

A single session-scoped :class:`~repro.harness.runs.Runner` memoizes
samples, so the non-redundant baseline and the Reunion/global runs are
simulated once and shared by every figure that needs them.  The runner
is additionally backed by the persistent result cache
(:mod:`repro.exec.cache`), so a repeated benchmark invocation replays
completed samples from ``.repro-cache/`` instead of re-simulating; set
``REPRO_NO_CACHE=1`` to force fresh simulation.

Scale selection: set ``REPRO_SCALE`` to ``quick`` (default), ``standard``
or ``paper`` before invoking ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.exec.cache import default_cache
from repro.harness.runs import Runner, current_scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def runner(scale):
    return Runner(scale, cache=default_cache())
