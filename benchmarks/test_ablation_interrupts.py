"""Ablation (extension): external-interrupt cost under redundant execution.

Section 4.3: interrupts are replicated to both cores and serviced at a
fingerprint-interval boundary chosen by the vocal.  Each delivery costs
a pipeline flush plus a serializing handler on *both* cores, so the cost
per interrupt grows with the comparison latency — another instance of
the serializing-event tax that Figure 7(b) shows for TLB handlers.
"""

from repro.harness.report import render_series
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode
from repro.workloads import by_name

LATENCIES = (0, 20, 40)
INTERRUPT_PERIOD = 400  # cycles between deliveries


def _throughput(latency: int, interrupts: bool, scale) -> float:
    workload = by_name("Zeus")
    config = scale.config.replace(n_logical=2).with_redundancy(
        mode=Mode.REUNION, comparison_latency=latency
    )
    system = CMPSystem(
        config, workload.programs(2, 0), workload.itlb_schedules(2, 0)
    )
    system.run(scale.warmup)
    start = system.user_instructions()
    for cycle in range(scale.measure):
        if interrupts and cycle % INTERRUPT_PERIOD == 0:
            system.post_interrupt(0)
        system.step()
    return (system.user_instructions() - start) / scale.measure


def test_interrupt_cost(benchmark, scale):
    def sweep():
        quiet, noisy = [], []
        for latency in LATENCIES:
            quiet.append(_throughput(latency, interrupts=False, scale=scale))
            noisy.append(_throughput(latency, interrupts=True, scale=scale))
        return quiet, noisy

    quiet, noisy = benchmark.pedantic(sweep, rounds=1, iterations=1)
    relative = [n / q if q else 0.0 for q, n in zip(quiet, noisy)]
    print()
    print(
        render_series(
            f"Extension — IPC with an interrupt every {INTERRUPT_PERIOD} cycles "
            "(Zeus, Reunion)",
            "latency",
            list(LATENCIES),
            {"no interrupts (IPC)": quiet, "with interrupts (IPC)": noisy,
             "relative": relative},
            "Interrupt delivery costs a flush plus a serializing handler on "
            "both cores; the tax grows with the comparison latency.",
        )
    )
    # Interrupts always cost something, and never break the machine.
    for q, n in zip(quiet, noisy):
        assert 0 < n <= q * 1.05
    # The interrupt tax at a 40-cycle latency exceeds the zero-latency tax.
    assert relative[-1] <= relative[0] + 0.05