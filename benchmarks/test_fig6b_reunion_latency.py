"""Benchmark: Figure 6(b) — Reunion sensitivity to comparison latency.

Shape criteria: unlike Strict, Reunion already pays a penalty at zero
latency (loose vocal/mute coupling plus mute contention at the shared
cache — the cost of relaxed input replication), and the curve declines
toward the Strict trend as the comparison latency dominates.
"""

from repro.harness.fig6 import run_fig6
from repro.sim.config import Mode


def test_fig6b(benchmark, runner):
    result = benchmark.pedantic(
        lambda: run_fig6(Mode.REUNION, runner=runner), rounds=1, iterations=1
    )
    print()
    print(result.render())

    strict = run_fig6(Mode.STRICT, runner=runner)  # cached samples: cheap

    zero_latency_penalties = []
    for category, points in result.series.items():
        zero_latency_penalties.append(1.0 - points[0])
        for earlier, later in zip(points, points[1:]):
            assert later <= earlier + 0.05, f"{category}: {points}"
        # Reunion never beats the Strict oracle by more than noise.
        for r, s in zip(points, strict.series[category]):
            assert r <= s + 0.05, f"{category}: Reunion {r:.3f} > Strict {s:.3f}"

    # The relaxed-input-replication cost exists: some class pays a real
    # penalty at zero comparison latency (paper: 5-6% on average).
    assert max(zero_latency_penalties) > 0.01
