"""Ablation: fingerprint aliasing — one-stage vs two-stage compression.

Section 4.3: parity-tree folding before the CRC doubles the aliasing
probability, bounding it at 2^-(N-1) for an N-bit CRC.  This bench
measures empirical aliasing over random update pairs for both schemes
and checks the bound (with sampling slack).
"""

import random

from repro.core.fingerprint import fingerprint_words
from repro.harness.report import render_table

TRIALS = 60_000


def _aliasing(bits: int, two_stage: bool, rng: random.Random) -> float:
    collisions = 0
    for _ in range(TRIALS):
        a, b = rng.getrandbits(64), rng.getrandbits(64)
        if a != b and fingerprint_words([a], bits, two_stage) == fingerprint_words(
            [b], bits, two_stage
        ):
            collisions += 1
    return collisions / TRIALS


def test_fingerprint_aliasing(benchmark):
    rng = random.Random(2006)

    def measure():
        rows = []
        for bits in (8, 12, 16):
            one = _aliasing(bits, two_stage=False, rng=rng)
            two = _aliasing(bits, two_stage=True, rng=rng)
            rows.append((bits, one, two, 2 ** -(bits - 1)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Ablation — empirical fingerprint aliasing probability",
            ["CRC bits", "one-stage", "two-stage", "bound 2^-(N-1)"],
            [
                [bits, f"{one:.2e}", f"{two:.2e}", f"{bound:.2e}"]
                for bits, one, two, bound in rows
            ],
            "Two-stage (parity trees + CRC) aliasing stays within the "
            "paper's 2^-(N-1) bound.",
        )
    )
    for bits, _one, two, bound in rows:
        # Allow generous sampling slack on rare events.
        slack = 4.0 if bits < 16 else 20.0
        assert two <= bound * slack, f"{bits}-bit two-stage aliasing above bound"
