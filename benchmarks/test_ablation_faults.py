"""Ablation (extension): soft-error injection campaign.

The paper injects no faults (Section 5); this extension exercises the
full detect-and-recover path: periodic single-bit upsets on vocal and
mute datapaths must all be detected by fingerprint comparison and
corrected by the re-execution protocol, leaving architectural state
identical to a golden run.
"""

from repro.core.faults import FaultInjector
from repro.harness.report import render_table
from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode

WORKLOAD = """
    movi r1, 60
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    xor r5, r4, r2
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def _campaign(victim: str, interval: int, config) -> dict:
    system = CMPSystem(config, [assemble(WORKLOAD)])
    injector = FaultInjector(interval=interval, seed=sum(victim.encode()))
    core = system.vocal_cores[0] if victim == "vocal" else system.cores[1]
    injector.attach(core)
    system.run_until_idle(max_cycles=1_000_000)
    golden = golden_run(assemble(WORKLOAD)).registers
    corrupted = any(
        system.vocal_cores[0].arf.read(reg) != golden.read(reg) for reg in range(8)
    )
    return {
        "victim": victim,
        "injected": len(injector.records),
        "recoveries": system.recoveries(),
        "failed": system.failed,
        "state_correct": not corrupted,
    }


def test_fault_campaign(benchmark, scale):
    config = scale.config.replace(n_logical=1).with_redundancy(
        mode=Mode.REUNION, comparison_latency=10
    )

    def campaign():
        return [
            _campaign("vocal", interval=60, config=config),
            _campaign("mute", interval=45, config=config),
        ]

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Extension — soft-error injection campaign",
            ["Victim", "Upsets", "Recoveries", "Failed", "State correct"],
            [
                [r["victim"], r["injected"], r["recoveries"], r["failed"], r["state_correct"]]
                for r in results
            ],
            "Every injected upset is detected and recovered; final vocal "
            "state matches the golden model.",
        )
    )
    for r in results:
        assert r["injected"] >= 1
        assert r["recoveries"] >= 1
        assert not r["failed"]
        assert r["state_correct"]
