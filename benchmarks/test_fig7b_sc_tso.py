"""Benchmark: Section 5.5 — store serialization under sequential consistency.

Shape criterion: SC places membar semantics on every store, so every
store serializes retirement; at a large comparison latency the SC curve
sits far below TSO (over 60% loss at 40 cycles in the paper).
"""

from repro.harness.fig7 import run_sc_comparison


def test_sc_vs_tso(benchmark, runner):
    result = benchmark.pedantic(
        lambda: run_sc_comparison(runner=runner), rounds=1, iterations=1
    )
    print()
    print(result.render())

    # SC is slower than TSO at every measured latency...
    for tso, sc in zip(result.tso, result.sc):
        assert sc < tso + 0.02, (tso, sc)
    # ...and the 40-cycle point shows a deep penalty.
    assert result.sc[-1] < result.tso[-1] - 0.10
    assert result.sc[-1] < 0.75
