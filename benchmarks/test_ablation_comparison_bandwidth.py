"""Ablation: output-comparison bandwidth by scheme (Section 2.4).

Shape criteria from the paper's survey: dependence-chain comparison
saves roughly twenty percent over direct comparison; fingerprinting cuts
bandwidth by orders of magnitude.
"""

from repro.core.bandwidth import BandwidthMeter
from repro.harness.report import render_table
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode
from repro.workloads import by_name


def test_comparison_bandwidth(benchmark, scale):
    workload = by_name("DB2 OLTP")

    def measure():
        out = {}
        for interval in (1, 50):
            config = scale.config.with_redundancy(
                mode=Mode.REUNION, comparison_latency=10, fingerprint_interval=interval
            )
            system = CMPSystem(
                config, workload.programs(config.n_logical, 0),
                workload.itlb_schedules(config.n_logical, 0),
            )
            meter = BandwidthMeter(
                fingerprint_bits=config.redundancy.fingerprint_bits,
                fingerprint_interval=interval,
            )
            meter.attach(system.vocal_cores[0])
            system.run(scale.warmup + scale.measure)
            out[interval] = meter
        return out

    meters = benchmark.pedantic(measure, rounds=1, iterations=1)
    meter = meters[1]
    print()
    print(
        render_table(
            "Ablation — comparison bandwidth per retired instruction (DB2 OLTP)",
            ["Scheme", "bits/instr"],
            [
                ["direct (all results)", f"{meter.direct_bits_per_instr:.1f}"],
                ["dependence-chain ends", f"{meter.chain_bits_per_instr:.1f}"],
                ["fingerprint, interval 1", f"{meters[1].fingerprint_bits_per_instr:.1f}"],
                ["fingerprint, interval 50", f"{meters[50].fingerprint_bits_per_instr:.2f}"],
            ],
            "Paper: chain comparison saves ~20%; fingerprints cut bandwidth "
            "by orders of magnitude.",
        )
    )
    assert meter.instructions > 1000
    # Chain-ending comparison is a genuine but modest saving.
    assert meter.chain_bits_per_instr < meter.direct_bits_per_instr
    assert meter.chain_bits_per_instr > 0.4 * meter.direct_bits_per_instr
    # Fingerprinting is orders of magnitude below direct comparison.
    assert meters[1].fingerprint_bits_per_instr < meter.direct_bits_per_instr / 2
    assert meters[50].fingerprint_bits_per_instr < meter.direct_bits_per_instr / 100
