"""Benchmark: Figure 6(a) — Strict sensitivity to comparison latency.

Shape criteria: essentially no penalty at zero latency; normalized IPC
decreases (weakly) monotonically as the latency grows to 40 cycles.
"""

from repro.harness.fig6 import run_fig6
from repro.sim.config import Mode


def test_fig6a(benchmark, runner):
    result = benchmark.pedantic(
        lambda: run_fig6(Mode.STRICT, runner=runner), rounds=1, iterations=1
    )
    print()
    print(result.render())

    for category, points in result.series.items():
        assert points[0] > 0.93, f"{category}: Strict at 0 cycles ~ non-redundant"
        assert points[-1] < points[0] + 0.02, f"{category}: no gain from latency"
        # Weak monotone decrease (small sampling noise tolerated).
        for earlier, later in zip(points, points[1:]):
            assert later <= earlier + 0.04, f"{category}: {points}"
        assert points[-1] >= 0.5, f"{category}: 40-cycle penalty implausibly large"
