"""Ablation: ROB capacity vs check-stage occupancy (Section 5.2).

Scientific workloads saturate the reorder buffer: instructions waiting
in check occupy ROB entries, reducing memory-level parallelism.  The
paper notes larger speculation windows eliminate this bottleneck (but
not serializing stalls).  This bench sweeps the RUU size under Strict at
a long comparison latency and checks the occupancy effect shrinks.
"""

import dataclasses

from repro.harness.report import render_series
from repro.sim.config import Mode
from repro.workloads import by_name

ROB_SIZES = (32, 64, 128)


def test_rob_occupancy(benchmark, runner, scale):
    workload = by_name("em3d")  # memory-parallel scientific workload

    def sweep():
        points = []
        for rob in ROB_SIZES:
            config = dataclasses.replace(
                scale.config,
                core=dataclasses.replace(scale.config.core, rob_size=rob),
            )
            base = config.with_redundancy(mode=Mode.NONREDUNDANT)
            strict = config.with_redundancy(mode=Mode.STRICT, comparison_latency=40)
            ratios = []
            for seed in scale.seeds:
                b = runner.sample(base, workload, seed)
                s = runner.sample(strict, workload, seed)
                ratios.append(s.ipc / b.ipc if b.ipc else 0.0)
            points.append(sum(ratios) / len(ratios))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_series(
            "Ablation — Strict @ 40-cycle latency vs RUU size (em3d)",
            "RUU entries",
            list(ROB_SIZES),
            {"normalized IPC": points},
            "Larger windows absorb check-stage occupancy (Section 5.2): the "
            "penalty shrinks as the RUU grows.",
        )
    )
    # The biggest window is at least as good as the smallest.
    assert points[-1] >= points[0] - 0.03, points
