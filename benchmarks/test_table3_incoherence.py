"""Benchmark: Table 3 — input incoherence per phantom request strength.

Shape criteria (the paper's conclusions):
* global phantom requests keep incoherence orders of magnitude below the
  weaker strengths — recovery stays off the critical path;
* null is at least as frequent as shared (it also misses L2 hits);
* commercial TLB misses remain comparable to or above global-phantom
  incoherence, supporting the "overshadowed by other system events"
  argument.
"""

from repro.harness.table3 import run_table3


def test_table3(benchmark, runner):
    result = benchmark.pedantic(
        lambda: run_table3(runner=runner), rounds=1, iterations=1
    )
    print()
    print(result.render())

    suite_global = []
    for name, global_rate, shared_rate, null_rate, tlb_rate in result.rows:
        suite_global.append(global_rate)
        assert null_rate >= shared_rate * 0.5, f"{name}: null should rival shared"
        if shared_rate > 0:
            # Scaled scientific kernels are L2-resident: their shared-
            # phantom replies are usually coherent, so shared can tie
            # global within race noise.  Global must never exceed it by
            # more than that noise band.
            assert global_rate <= shared_rate * 1.25 + 25, (
                f"{name}: global must not exceed shared"
            )
        # Weak strengths produce incoherence at rates that make recovery
        # a bottleneck (thousands per 1M instructions).
        assert null_rate > 100, f"{name}: null phantom rate implausibly low"

    # For the commercial suite — where the paper's comparison against TLB
    # misses lives — global is >= two orders of magnitude quieter than
    # null.  (Scaled scientific kernels carry inflated global rates; see
    # EXPERIMENTS.md.)
    commercial = [row for row in result.rows if not row[0][0].islower()]
    avg_global = sum(row[1] for row in commercial) / len(commercial)
    avg_null = sum(row[3] for row in commercial) / len(commercial)
    assert avg_null > 100 * max(avg_global, 1.0)
    # Commercial TLB misses dwarf global incoherence (the paper's
    # "overshadowed by other system events" argument).
    avg_tlb = sum(row[4] for row in commercial) / len(commercial)
    assert avg_tlb > 3 * max(avg_global, 1.0)
