"""Benchmark: Figure 7(b) — hardware vs software-managed TLBs.

Shape criteria: with the software-managed TLB, the fast-miss handler's
traps and non-idempotent MMU operations serialize retirement, so the
commercial-average normalized IPC falls below the hardware-TLB curve and
the gap grows with the comparison latency.
"""

from repro.harness.fig7 import run_fig7b


def test_fig7b(benchmark, runner):
    result = benchmark.pedantic(
        lambda: run_fig7b(runner=runner), rounds=1, iterations=1
    )
    print()
    print(result.render())

    gaps = [hw - sw for hw, sw in zip(result.hardware, result.software)]
    # Software TLB is never meaningfully faster...
    assert all(gap > -0.03 for gap in gaps), gaps
    # ...and at large comparison latencies the serializing handler bites
    # substantially (paper: 28% at 40 cycles).
    assert gaps[-1] > 0.02, f"no software-TLB penalty at 40 cycles: {gaps}"
    # The handler tax never fades with latency.  (At zero latency this
    # model already shows a loose-coupling tax from handler-timing skew
    # between vocal and mute, so strict monotonicity from the first
    # point is not required — only that the large-latency gap is no
    # smaller than the smallest observed gap.)
    assert gaps[-1] >= min(gaps) - 0.02, gaps
