"""Benchmark: regenerate Figure 5 (baseline Strict and Reunion performance).

Run with ``pytest benchmarks/test_fig5_baseline.py --benchmark-only``.
Prints the per-workload normalized-IPC table and asserts the paper's
shape: Strict >= Reunion, both close to 1.0, commercial penalties at
least as large as scientific for Strict.
"""

from repro.harness.fig5 import run_fig5


def test_fig5(benchmark, runner):
    result = benchmark.pedantic(
        lambda: run_fig5(runner=runner), rounds=1, iterations=1
    )
    print()
    print(result.render())

    for name, _category, strict, reunion in result.rows:
        assert 0.4 < reunion <= strict * 1.05, f"{name}: Reunion should not beat Strict"
        assert strict <= 1.08, f"{name}: Strict cannot beat non-redundant by much"

    # Strict stays close to non-redundant; Reunion pays the relaxed-
    # input-replication overhead on top.
    assert result.commercial_average(2) > 0.80
    assert result.scientific_average(2) > 0.90
    assert result.commercial_average(3) > 0.70
    # Scientific workloads lose less than commercial under Strict, as in
    # the paper (serializing instructions dominate commercial).
    assert result.scientific_average(2) >= result.commercial_average(2) - 0.02
