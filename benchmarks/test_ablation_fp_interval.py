"""Ablation: fingerprint interval length (Section 4.3).

The paper reports that intervals between 1 and 50 instructions perform
indistinguishably, because useful computation continues to the end of
the interval *and the 256-entry RUU absorbs the extra occupancy*.  The
second condition matters: on a small ROB, a 50-instruction interval eats
most of the speculation window.  This bench therefore sweeps the
interval at the paper's RUU size and asserts the spread stays small.
"""

import dataclasses

from repro.harness.report import render_series
from repro.harness.runs import Runner
from repro.sim.config import Mode
from repro.workloads import by_name

INTERVALS = (1, 4, 16, 50)


def test_fingerprint_interval(benchmark, scale):
    workload = by_name("DB2 OLTP")
    # The paper's claim is conditioned on its 256-entry RUU and 64-entry
    # store buffer; the scaled defaults are too small to absorb
    # 50-instruction intervals (stores wait in the buffer until checked).
    big_rob = dataclasses.replace(
        scale.config,
        core=dataclasses.replace(
            scale.config.core, rob_size=256, store_buffer_size=64
        ),
    )
    runner = Runner(dataclasses.replace(scale, config=big_rob))

    def sweep():
        points = []
        for interval in INTERVALS:
            config = big_rob.with_redundancy(
                mode=Mode.REUNION,
                comparison_latency=10,
                fingerprint_interval=interval,
            )
            points.append(runner.normalized_ipc(config, workload))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_series(
            "Ablation — fingerprint interval (DB2 OLTP, latency 10)",
            "interval",
            list(INTERVALS),
            {"normalized IPC": points},
            "Paper: performance difference between intervals of 1 and 50 "
            "instructions is insignificant.",
        )
    )
    spread = max(points) - min(points)
    # Paper: "insignificant" difference between intervals 1 and 50.  At
    # quick scale a single short window carries a few points of noise.
    assert spread < 0.18, f"interval sweep spread {spread:.3f} too large: {points}"
