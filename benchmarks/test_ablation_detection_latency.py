"""Ablation (extension): soft-error detection latency vs fingerprint interval.

Fingerprinting's guarantee (Smolens et al. [21], which Reunion builds
on) is *bounded* detection latency: an upset is exposed no later than
the comparison of the fingerprint interval it falls in, plus the
comparison latency.  This bench injects periodic upsets at several
fingerprint intervals and checks that (a) every upset is detected, and
(b) mean detection latency grows with the interval but stays within a
small multiple of interval + comparison latency.
"""

from repro.core.faults import FaultInjector, detection_latencies
from repro.harness.report import render_table
from repro.isa import assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode
from repro.sim.options import SimOptions

WORKLOAD = """
    movi r1, 200
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    xor r5, r4, r2
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

INTERVALS = (1, 8, 32)
COMPARISON_LATENCY = 10


def _measure(fp_interval: int, scale) -> tuple[int, int, float]:
    config = scale.config.replace(n_logical=1).with_redundancy(
        mode=Mode.REUNION,
        comparison_latency=COMPARISON_LATENCY,
        fingerprint_interval=fp_interval,
    )
    # Events-armed so each upset is correlated with *its own* interval's
    # comparison, never with the first recovery that happens along.
    system = CMPSystem(
        config, [assemble(WORKLOAD)], options=SimOptions(trace="events")
    )
    injector = FaultInjector(interval=150, seed=11)
    injector.attach(system.cores[1])  # the mute
    system.run_until_idle(max_cycles=2_000_000)
    assert not system.failed
    latencies = detection_latencies(
        injector.records, events=system.obs.log.snapshot()
    )
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    return len(injector.records), len(latencies), mean


def test_detection_latency(benchmark, scale):
    def campaign():
        return {interval: _measure(interval, scale) for interval in INTERVALS}

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Extension — detection latency vs fingerprint interval (mute upsets)",
            ["FP interval", "Upsets", "Detected", "Mean latency (cycles)"],
            [
                [interval, injected, detected, f"{mean:.1f}"]
                for interval, (injected, detected, mean) in results.items()
            ],
            "Detection latency is bounded by the fingerprint interval plus "
            "the comparison latency (plus pipeline drain).",
        )
    )
    for interval, (injected, detected, mean) in results.items():
        assert injected >= 2
        assert detected == injected, f"undetected upsets at interval {interval}"
        # Bound: interval fill time + comparison + generous pipeline slack.
        assert mean <= 8 * (interval + COMPARISON_LATENCY) + 60

    # Latency grows (weakly) with the interval.
    means = [results[i][2] for i in INTERVALS]
    assert means[-1] >= means[0] - 5
