"""Ablation: Reunion on a shared-cache CMP vs a snoopy-bus CMP.

Section 4.1: the execution model is implementation-agnostic — it works
at a Piranha-style shared cache controller or at a snoopy interface with
private caches (Montecito).  This bench runs the same workloads on both
organizations and checks the Reunion *overhead* (normalized to each
organization's own non-redundant baseline) is comparable: the execution
model's costs come from checking and loose coupling, not from the
coherence substrate.
"""

from repro.harness.report import render_table
from repro.sim.config import CacheStyle, Mode
from repro.workloads import by_name

WORKLOADS = ["Apache", "DB2 OLTP", "ocean"]


def test_snoopy_vs_shared(benchmark, runner, scale):
    def measure():
        rows = []
        for name in WORKLOADS:
            workload = by_name(name)
            row = [name]
            for style in (CacheStyle.SHARED, CacheStyle.SNOOPY):
                config = scale.config.replace(cache_style=style)
                base = config.with_redundancy(mode=Mode.NONREDUNDANT)
                reunion = config.with_redundancy(
                    mode=Mode.REUNION, comparison_latency=10
                )
                ratios = []
                for seed in scale.seeds:
                    b = runner.sample(base, workload, seed)
                    t = runner.sample(reunion, workload, seed)
                    ratios.append(t.ipc / b.ipc if b.ipc else 0.0)
                row.append(sum(ratios) / len(ratios))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Ablation — Reunion overhead: shared-cache vs snoopy-bus CMP",
            ["Workload", "Shared L2", "Snoopy bus"],
            rows,
            "The execution model ports across coherence substrates "
            "(Section 4.1); overheads stay in the same band.",
        )
    )
    for name, shared_norm, snoopy_norm in rows:
        assert 0.4 < shared_norm <= 1.1, name
        assert 0.4 < snoopy_norm <= 1.1, name
        # Same ballpark on both substrates.
        assert abs(shared_norm - snoopy_norm) < 0.25, (name, shared_norm, snoopy_norm)
